//! Incremental data exchange: delta-driven re-evaluation of GLAV mappings.
//!
//! A full exchange re-derives the whole target from scratch on every source
//! change. This engine instead applies a [`SourceDelta`] in four stages:
//!
//! 1. **Mapping pruning** — a mapping is *affected* only when one of its
//!    foreach from-items is a root-rooted path equal to a changed set path
//!    (the same root-rooted path keys the PR 6 statistics catalog uses).
//!    Unaffected mappings are skipped entirely.
//! 2. **Semi-naive re-enumeration** — when exactly one from-item of an
//!    affected mapping touches the changed set, the foreach query is run
//!    twice with that item's member domain restricted (deleted members over
//!    the old sources, inserted members over the new), layered on the PR 4
//!    hash-join via [`dtr_query::eval::EvalOptions::domains`]. Self-joins
//!    and exotic from sources conservatively fall back to a full foreach
//!    re-evaluation plus a multiset diff of the row bags.
//! 3. **Retraction by journal replay** — target rows are organized into
//!    *member classes* (one top-level PNF member plus its subtree). The
//!    engine keeps, per class, the multiset of foreach rows each mapping
//!    contributed — the same `f_mp` binding fingerprints the provenance
//!    journal records. A class touched by removed/added rows is detached
//!    (annotations stripped, merge-index entries pruned) and rebuilt by
//!    replaying only its surviving rows, in mapping order, with the insert
//!    mask restricted to the class's binding chains. PNF re-merge and
//!    collision splits replay naturally through the exchange merge index,
//!    confined to the affected sets.
//! 4. **Skeleton sync** — mappings whose row bag transitions to/from empty
//!    have their `f_mp` names added/removed along the skeleton chains, and
//!    chain nodes left with no annotations and no children are detached,
//!    so the target matches what a from-scratch exchange would build.
//!
//! Correctness rests on the annotation closed form: the final `f_mp` set of
//! any node depends only on *which* rows each mapping contributed, never on
//! the order rows were inserted, so replaying a class's surviving rows in
//! mapping order reproduces the exact annotated subtree a full re-exchange
//! would produce (canonically — arena node ids differ). The conformance law
//! `law_incremental` in dtr-check holds this identity over generated update
//! streams, including the synthesized [`ExchangeReport`].

use crate::delta::{DeltaError, EditOp, SourceDelta, TargetChange, TargetDelta};
use crate::exchange::{
    build_member_reference, effective_eval, eval_foreach, plan_exists, value_fingerprint,
    BindingTouch, Exchange, ExchangeError, ExchangeOptions, ExchangeReport, MappingStats,
    MemberShape, Parent, Plan,
};
use crate::glav::Mapping;
use dtr_model::instance::{Instance, NodeId, Value};
use dtr_model::schema::Schema;
use dtr_model::value::AtomicValue;
use dtr_query::ast::{Expr, PathStart};
use dtr_query::eval::Source;
use dtr_query::functions::FunctionRegistry;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::Hasher;
use std::sync::Arc;

/// A foreach tuple.
type Row = Vec<AtomicValue>;
/// A multiset of foreach tuples.
type Bag = HashMap<Row, usize>;

/// Total-order key over rows, used wherever `HashMap` iteration order
/// would otherwise leak into the target's member order (atomic values
/// carry floats, so `Row` has no `Ord`). The `Debug` rendering
/// distinguishes variants — `Str("1")` never collides with `Int(1)` — so
/// the order is collision-free and identical across processes, which is
/// what makes crash recovery replay byte-identical.
fn row_order_key(row: &Row) -> String {
    format!("{row:?}")
}

/// The retraction index entry for one top-level member class: the member's
/// set, its fingerprint, and — per contributing mapping — the multiset of
/// foreach rows routed into this class (with the bitmask of root bindings
/// that routed them) plus the insert/merge event counts confined to the
/// class's chains. Keyed by the member's current node id.
#[derive(Clone, Debug)]
struct ClassState {
    set: NodeId,
    fp: u64,
    /// mapping index → row → (multiplicity, root-binding bitmask).
    rows: BTreeMap<usize, HashMap<Row, (usize, u64)>>,
    /// mapping index → (member-binding insert events, merge events).
    stats: BTreeMap<usize, (usize, usize)>,
}

impl Default for ClassState {
    fn default() -> Self {
        ClassState {
            set: NodeId(u32::MAX),
            fp: 0,
            rows: BTreeMap::new(),
            stats: BTreeMap::new(),
        }
    }
}

impl ClassState {
    fn is_drained(&self) -> bool {
        self.rows.values().all(HashMap::is_empty)
    }

    fn remaining_rows(&self) -> usize {
        self.rows
            .values()
            .flat_map(|per| per.values().map(|&(n, _)| n))
            .sum()
    }
}

/// How one apply re-enumerates a mapping's foreach rows.
enum Reeval {
    /// No from-item can touch a changed path: skip.
    Pruned,
    /// Exactly one from-item (at this index, with this path key) touches:
    /// two restricted evaluations (deleted domain over old sources,
    /// inserted domain over new).
    Restricted(String),
    /// Conservative full re-evaluation plus multiset bag diff.
    Full,
}

/// One resolved edit batch against one source set.
struct SetChange {
    source: usize,
    set: NodeId,
    path: String,
    /// Member list before the batch (for rollback).
    original: Vec<NodeId>,
    /// Pre-existing members the batch removes.
    deleted: Vec<NodeId>,
    /// Values the batch appends (insert-then-delete already cancelled).
    inserted_values: Vec<Value>,
    /// Node ids of the appended members (filled at mutation time).
    inserted: Vec<NodeId>,
}

/// The incremental exchange engine. Owns its sources, target and retraction
/// index; constructed by a full build, advanced by [`IncrementalExchange::apply`],
/// reset by [`IncrementalExchange::rebase`].
pub struct IncrementalExchange {
    source_schemas: Vec<Schema>,
    sources: Vec<Instance>,
    target_schema: Schema,
    mappings: Vec<Mapping>,
    functions: FunctionRegistry,
    opts: ExchangeOptions,
    member_fp: Option<fn(&Value) -> u64>,
    plans: Vec<Plan>,
    root_of: Vec<Vec<usize>>,
    bags: Vec<Bag>,
    target: Instance,
    merge_index: HashMap<(NodeId, u64), Vec<(Value, NodeId)>>,
    classes: HashMap<NodeId, ClassState>,
    report: ExchangeReport,
    batch: u64,
}

impl IncrementalExchange {
    /// Builds the initial target with a full exchange and the retraction
    /// index alongside it. `source_schemas` and `sources` are aligned.
    pub fn new(
        source_schemas: Vec<Schema>,
        sources: Vec<Instance>,
        target_schema: Schema,
        mappings: Vec<Mapping>,
        functions: FunctionRegistry,
        opts: ExchangeOptions,
    ) -> Result<Self, DeltaError> {
        let mut me = IncrementalExchange {
            source_schemas,
            sources,
            target: Instance::new(target_schema.name().to_string()),
            target_schema,
            mappings,
            functions,
            opts,
            member_fp: None,
            plans: Vec::new(),
            root_of: Vec::new(),
            bags: Vec::new(),
            merge_index: HashMap::new(),
            classes: HashMap::new(),
            report: ExchangeReport::default(),
            batch: 0,
        };
        me.rebase()?;
        Ok(me)
    }

    /// Overrides the member fingerprint used for PNF-merge bucketing (see
    /// [`Exchange::set_member_fingerprinter`] for the contract) and rebases
    /// so the whole index is built under the override. Conformance-testing
    /// hook for forcing collision splits under retraction.
    pub fn set_member_fingerprinter(&mut self, f: fn(&Value) -> u64) -> Result<(), DeltaError> {
        self.member_fp = Some(f);
        self.rebase()
    }

    /// Drops every increment and rebuilds target, bags, merge index and
    /// retraction index from the current sources with a full exchange.
    pub fn rebase(&mut self) -> Result<(), DeltaError> {
        let span = dtr_obs::span("exchange.incremental.rebase");
        let mut ex = Exchange::new(Vec::new(), &self.target_schema, &self.functions);
        if let Some(f) = self.member_fp {
            ex.set_member_fingerprinter(f);
        }
        ex.set_budget(&self.opts.budget);
        let eval = effective_eval(&self.opts);
        let views = source_views(&self.source_schemas, &self.sources);
        let mut plans = Vec::new();
        let mut roots = Vec::new();
        let mut bags = Vec::new();
        let mut classes: HashMap<NodeId, ClassState> = HashMap::new();
        for (mi, m) in self.mappings.iter().enumerate() {
            let plan = plan_exists(m, &self.target_schema)?;
            if plan.bindings.len() > 64 {
                return Err(DeltaError::Exchange(ExchangeError::Unsupported(format!(
                    "mapping {}: more than 64 exists bindings in incremental mode",
                    m.name
                ))));
            }
            let root_of = plan.root_of();
            let rows = eval_foreach(&views, &self.functions, m, eval.clone())?;
            let mut stats = MappingStats::default();
            let mut shapes: Vec<Option<MemberShape>> = Vec::new();
            shapes.resize_with(plan.bindings.len(), || None);
            let mut bag: Bag = HashMap::new();
            for row in rows {
                ex.meter.charge_rows(1).map_err(|g| ExchangeError::Guard {
                    error: g,
                    mappings_completed: mi,
                })?;
                let touches = ex.insert_row(
                    m,
                    &plan,
                    &row,
                    self.opts.member_templates,
                    &mut shapes,
                    &mut stats,
                    None,
                )?;
                record_row(&mut classes, &root_of, &touches, mi, &row);
                *bag.entry(row).or_insert(0) += 1;
            }
            plans.push(plan);
            roots.push(root_of);
            bags.push(bag);
        }
        ex.target
            .annotate_elements(&self.target_schema)
            .map_err(|e| ExchangeError::Conformance(e.to_string()))?;
        self.plans = plans;
        self.root_of = roots;
        self.bags = bags;
        self.target = ex.target;
        self.merge_index = ex.merge_index;
        self.classes = classes;
        self.batch = 0;
        self.synthesize_report();
        // Rebase rebuilds every set from scratch: merge fresh path counts
        // and invalidate plans compiled against the pre-rebase catalog.
        if dtr_obs::stats::enabled() {
            let mut local = dtr_obs::StatsCatalog::new();
            for s in &self.sources {
                crate::exchange::collect_instance_stats(&mut local, s);
            }
            crate::exchange::collect_instance_stats(&mut local, &self.target);
            dtr_obs::stats::merge(&local);
        }
        dtr_obs::stats::bump_cardinality_version();
        span.record("classes", self.classes.len());
        Ok(())
    }

    /// Applies one edit batch: mutates the sources and brings the target —
    /// instance, annotations, merge index and report — to exactly what a
    /// full re-exchange over the mutated sources would produce
    /// (canonically). On error nothing is changed: resolution errors abort
    /// before any mutation, and mid-batch failures (budget trips included)
    /// roll both sides back.
    pub fn apply(&mut self, delta: &SourceDelta) -> Result<TargetDelta, DeltaError> {
        let started = std::time::Instant::now();
        let span = dtr_obs::span("exchange.incremental.apply").field("edits", delta.edits.len());
        // Deep target-side snapshot only when a budget can trip mid-replay;
        // source sets are always restorable from the per-set originals.
        let snapshot = self.opts.budget.is_limited().then(|| {
            (
                self.bags.clone(),
                self.target.clone(),
                self.merge_index.clone(),
                self.classes.clone(),
            )
        });
        let mut changes = self.resolve(delta)?;
        let result = self.apply_resolved(&mut changes);
        match result {
            Ok(mut td) => {
                self.batch += 1;
                td.batch = self.batch;
                td.edits = delta.edits.len();
                self.synthesize_report();
                // Keep the statistics catalog's set cardinalities — the
                // same root-rooted path keys the pruning index uses —
                // current for the mutated sets.
                if dtr_obs::stats::enabled() {
                    for c in &changes {
                        let n = self.sources[c.source]
                            .set_members(c.set)
                            .map_or(0, <[NodeId]>::len);
                        dtr_obs::stats::record_set(&c.path, n as u64);
                    }
                }
                // Cardinalities moved: cached plans compiled against the
                // pre-delta catalog must not be reused as-is.
                dtr_obs::stats::bump_cardinality_version();
                let counters = dtr_obs::counters();
                counters.delta_batches.incr();
                counters.delta_edits.add(delta.edits.len() as u64);
                counters.delta_rows_added.add(td.rows_added as u64);
                counters.delta_rows_removed.add(td.rows_removed as u64);
                counters
                    .delta_classes_rebuilt
                    .add(td.classes_rebuilt as u64);
                counters
                    .delta_mappings_pruned
                    .add(td.mappings_pruned as u64);
                counters
                    .delta_mappings_reevaluated
                    .add(td.mappings_reevaluated as u64);
                let wall = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                if dtr_obs::journal::enabled() {
                    dtr_obs::journal::record(dtr_obs::journal::event(
                        "exchange.apply_delta",
                        dtr_obs::journal::Outcome::DeltaApplied {
                            edits: td.edits as u64,
                            rebuilt: td.classes_rebuilt as u64,
                        },
                    ));
                }
                if dtr_obs::recorder::enabled() {
                    dtr_obs::recorder::record_delta_window(
                        self.batch,
                        td.edits as u64,
                        td.classes_rebuilt as u64,
                        td.retracted.len() as u64,
                        wall,
                    );
                    dtr_obs::recorder::sample_counters();
                }
                span.record("rebuilt", td.classes_rebuilt);
                Ok(td)
            }
            Err(e) => {
                // Roll the source sets back and re-derive their element
                // annotations, then restore the target-side state.
                for c in &changes {
                    self.sources[c.source].replace_children(c.set, c.original.clone());
                    for &d in &c.inserted {
                        self.sources[c.source].strip_annotations(d);
                    }
                    let _ =
                        self.sources[c.source].annotate_elements(&self.source_schemas[c.source]);
                }
                if let Some((bags, target, merge_index, classes)) = snapshot {
                    self.bags = bags;
                    self.target = target;
                    self.merge_index = merge_index;
                    self.classes = classes;
                }
                Err(e)
            }
        }
    }

    /// The annotated target instance as of the last apply.
    pub fn target(&self) -> &Instance {
        &self.target
    }

    /// The (mutated) source instances, aligned with [`IncrementalExchange::source_schemas`].
    pub fn sources(&self) -> &[Instance] {
        &self.sources
    }

    /// The source schemas.
    pub fn source_schemas(&self) -> &[Schema] {
        &self.source_schemas
    }

    /// The target schema.
    pub fn target_schema(&self) -> &Schema {
        &self.target_schema
    }

    /// The mappings this engine executes.
    pub fn mappings(&self) -> &[Mapping] {
        &self.mappings
    }

    /// The synthesized exchange report: per-mapping `tuples`, `bindings`,
    /// `rows_inserted` and `rows_merged` match what a full re-exchange over
    /// the current sources would report (annotation and wall-time fields
    /// are not maintained incrementally and stay zero).
    pub fn report(&self) -> &ExchangeReport {
        &self.report
    }

    /// Batches applied since the last rebase.
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// Resolves an edit batch against the sources *without mutating them*:
    /// sequential index resolution over a simulated member list, with
    /// insert-then-delete cancellation.
    fn resolve(&self, delta: &SourceDelta) -> Result<Vec<SetChange>, DeltaError> {
        enum Slot {
            Old(NodeId),
            New(usize),
        }
        let mut changes: Vec<SetChange> = Vec::new();
        let mut slots: Vec<Vec<Slot>> = Vec::new();
        let mut pending: Vec<Vec<Option<Value>>> = Vec::new();
        for edit in &delta.edits {
            let ci = match changes.iter().position(|c| c.path == edit.path) {
                Some(i) => i,
                None => {
                    let (source, set) = self.resolve_set_path(&edit.path)?;
                    let original = self.sources[source]
                        .set_members(set)
                        .expect("resolved to a set")
                        .to_vec();
                    slots.push(original.iter().map(|&n| Slot::Old(n)).collect());
                    pending.push(Vec::new());
                    changes.push(SetChange {
                        source,
                        set,
                        path: edit.path.clone(),
                        original,
                        deleted: Vec::new(),
                        inserted_values: Vec::new(),
                        inserted: Vec::new(),
                    });
                    changes.len() - 1
                }
            };
            let c = &mut changes[ci];
            let list = &mut slots[ci];
            let news = &mut pending[ci];
            let delete = |idx: usize,
                          list: &mut Vec<Slot>,
                          news: &mut [Option<Value>],
                          c: &mut SetChange|
             -> Result<(), DeltaError> {
                if idx >= list.len() {
                    return Err(DeltaError::Index(format!(
                        "{}[{}]: set has {} member(s)",
                        c.path,
                        idx,
                        list.len()
                    )));
                }
                match list.remove(idx) {
                    Slot::Old(n) => c.deleted.push(n),
                    Slot::New(k) => news[k] = None,
                }
                Ok(())
            };
            match &edit.op {
                EditOp::Insert(v) => {
                    list.push(Slot::New(news.len()));
                    news.push(Some(v.clone()));
                }
                EditOp::Delete(idx) => delete(*idx, list, news, c)?,
                EditOp::Modify(idx, v) => {
                    delete(*idx, list, news, c)?;
                    list.push(Slot::New(news.len()));
                    news.push(Some(v.clone()));
                }
            }
        }
        for (ci, news) in pending.into_iter().enumerate() {
            changes[ci].inserted_values = news.into_iter().flatten().collect();
        }
        changes.retain(|c| !c.deleted.is_empty() || !c.inserted_values.is_empty());
        Ok(changes)
    }

    /// Resolves a root-rooted dot path to `(source index, set node)`.
    fn resolve_set_path(&self, path: &str) -> Result<(usize, NodeId), DeltaError> {
        let mut parts = path.split('.');
        let root = parts.next().unwrap_or_default();
        let (si, mut node) = self
            .sources
            .iter()
            .enumerate()
            .find_map(|(i, s)| s.root(root).map(|n| (i, n)))
            .ok_or_else(|| DeltaError::Path(format!("no source has a root `{root}`")))?;
        for label in parts {
            node = self.sources[si]
                .child_by_label(node, label)
                .ok_or_else(|| DeltaError::Path(format!("`{path}`: no field `{label}`")))?;
        }
        if self.sources[si].set_members(node).is_none() {
            return Err(DeltaError::Path(format!("`{path}` is not a set")));
        }
        Ok((si, node))
    }

    /// Classifies how a mapping must be re-enumerated for the changed set
    /// paths.
    fn classify(&self, mi: usize, changed: &HashSet<String>) -> Reeval {
        let m = &self.mappings[mi];
        let mut touching: Vec<String> = Vec::new();
        let mut wildcard = false;
        for b in &m.foreach.from {
            match &b.source {
                Expr::Path(p) => {
                    if matches!(p.start, PathStart::Root(_)) {
                        let key = p.to_string();
                        if changed.contains(&key) {
                            touching.push(key);
                        }
                    }
                }
                // Function- or annotation-sourced bindings can depend on
                // arbitrary source state; re-evaluate in full.
                _ => wildcard = true,
            }
        }
        if touching.is_empty() && !wildcard {
            return Reeval::Pruned;
        }
        if touching.len() == 1 && !wildcard {
            return Reeval::Restricted(touching.pop().expect("one touching item"));
        }
        Reeval::Full
    }

    /// The post-resolution pipeline: restricted/full re-enumeration, bag
    /// diffing, dirty-class rebuild, skeleton sync, element re-annotation.
    fn apply_resolved(&mut self, changes: &mut [SetChange]) -> Result<TargetDelta, DeltaError> {
        let mut td = TargetDelta::default();
        if changes.is_empty() {
            td.mappings_pruned = self.mappings.len();
            return Ok(td);
        }
        let changed: HashSet<String> = changes.iter().map(|c| c.path.clone()).collect();
        let modes: Vec<Reeval> = (0..self.mappings.len())
            .map(|mi| self.classify(mi, &changed))
            .collect();
        let eval = effective_eval(&self.opts);

        // Phase 1 (pure): removed rows of restricted mappings, evaluated
        // over the *old* sources with the touching item's domain limited to
        // the deleted members.
        let deleted_domain: HashMap<String, HashSet<NodeId>> = changes
            .iter()
            .filter(|c| !c.deleted.is_empty())
            .map(|c| (c.path.clone(), c.deleted.iter().copied().collect()))
            .collect();
        let mut removed: Vec<Bag> = vec![Bag::new(); self.mappings.len()];
        let mut added: Vec<Bag> = vec![Bag::new(); self.mappings.len()];
        {
            let views = source_views(&self.source_schemas, &self.sources);
            for (mi, mode) in modes.iter().enumerate() {
                if let Reeval::Restricted(key) = mode {
                    if deleted_domain.contains_key(key) {
                        let mut opts = eval.clone();
                        opts.domains = Some(Arc::new(
                            deleted_domain
                                .iter()
                                .filter(|(p, _)| *p == key)
                                .map(|(p, d)| (p.clone(), d.clone()))
                                .collect(),
                        ));
                        let rows = eval_foreach(&views, &self.functions, &self.mappings[mi], opts)?;
                        for row in rows {
                            *removed[mi].entry(row).or_insert(0) += 1;
                        }
                    }
                }
            }
        }

        // Phase 2: mutate the sources and refresh their element
        // annotations (inserted members arrive un-annotated).
        for c in changes.iter_mut() {
            for &d in &c.deleted {
                self.sources[c.source].detach_set_member(c.set, d);
                self.sources[c.source].strip_annotations(d);
            }
            for v in &c.inserted_values {
                let n = self.sources[c.source].push_set_member(c.set, v.clone());
                c.inserted.push(n);
            }
            self.sources[c.source]
                .annotate_elements(&self.source_schemas[c.source])
                .map_err(|e| {
                    ExchangeError::Conformance(format!(
                        "inserted member does not conform at `{}`: {e}",
                        c.path
                    ))
                })?;
        }

        // Phase 3: added rows (restricted over the new sources) and full
        // re-evaluations, then bag updates.
        let inserted_domain: HashMap<String, HashSet<NodeId>> = changes
            .iter()
            .filter(|c| !c.inserted.is_empty())
            .map(|c| (c.path.clone(), c.inserted.iter().copied().collect()))
            .collect();
        {
            let views = source_views(&self.source_schemas, &self.sources);
            for (mi, mode) in modes.iter().enumerate() {
                match mode {
                    Reeval::Pruned => td.mappings_pruned += 1,
                    Reeval::Restricted(key) => {
                        td.mappings_reevaluated += 1;
                        if inserted_domain.contains_key(key) {
                            let mut opts = eval.clone();
                            opts.domains = Some(Arc::new(
                                inserted_domain
                                    .iter()
                                    .filter(|(p, _)| *p == key)
                                    .map(|(p, d)| (p.clone(), d.clone()))
                                    .collect(),
                            ));
                            let rows =
                                eval_foreach(&views, &self.functions, &self.mappings[mi], opts)?;
                            for row in rows {
                                *added[mi].entry(row).or_insert(0) += 1;
                            }
                        }
                    }
                    Reeval::Full => {
                        td.mappings_reevaluated += 1;
                        let rows = eval_foreach(
                            &views,
                            &self.functions,
                            &self.mappings[mi],
                            eval.clone(),
                        )?;
                        let mut new_bag: Bag = HashMap::new();
                        for row in rows {
                            *new_bag.entry(row).or_insert(0) += 1;
                        }
                        let (rem, add) = bag_diff(&self.bags[mi], &new_bag);
                        removed[mi] = rem;
                        added[mi] = add;
                    }
                }
            }
        }
        for mi in 0..self.mappings.len() {
            for (row, &k) in &removed[mi] {
                td.rows_removed += k;
                match self.bags[mi].get_mut(row) {
                    Some(n) if *n >= k => {
                        *n -= k;
                        if *n == 0 {
                            self.bags[mi].remove(row);
                        }
                    }
                    _ => {
                        return Err(DeltaError::Exchange(ExchangeError::Conformance(format!(
                            "mapping {}: retracted row not in bag",
                            self.mappings[mi].name
                        ))))
                    }
                }
            }
            for (row, &k) in &added[mi] {
                td.rows_added += k;
                *self.bags[mi].entry(row.clone()).or_insert(0) += k;
            }
        }

        // Phase 4 (pure): route removed/added rows to their member classes.
        let mut dirty: HashSet<NodeId> = HashSet::new();
        let mut fresh: Vec<(usize, Row, usize, u64)> = Vec::new();
        for mi in 0..self.mappings.len() {
            if removed[mi].is_empty() && added[mi].is_empty() {
                continue;
            }
            let plan = &self.plans[mi];
            for (row, &k) in &removed[mi] {
                for (bi, value) in self.root_member_values(mi, row)? {
                    let member = self.find_member(plan, bi, &value).ok_or_else(|| {
                        ExchangeError::Conformance(format!(
                            "mapping {}: retracted member missing from merge index",
                            self.mappings[mi].name
                        ))
                    })?;
                    dirty.insert(member);
                    let cls = self.classes.get_mut(&member).ok_or_else(|| {
                        ExchangeError::Conformance(
                            "retracted member missing from retraction index".to_string(),
                        )
                    })?;
                    let per = cls.rows.entry(mi).or_default();
                    match per.get_mut(row) {
                        Some(e) if e.0 >= k => {
                            e.0 -= k;
                            if e.0 == 0 {
                                per.remove(row);
                            }
                        }
                        _ => {
                            return Err(DeltaError::Exchange(ExchangeError::Conformance(
                                "retraction index out of step with row bags".to_string(),
                            )))
                        }
                    }
                }
            }
            // HashMap order must not leak into the target: fresh members
            // are appended in this iteration order, so replaying the same
            // delta (crash recovery) has to walk the same sequence.
            let mut additions: Vec<(&Row, usize)> =
                added[mi].iter().map(|(row, &k)| (row, k)).collect();
            additions.sort_unstable_by_key(|(row, _)| row_order_key(row));
            for (row, k) in additions {
                let mut fresh_mask = 0u64;
                for (bi, value) in self.root_member_values(mi, row)? {
                    match self.find_member(plan, bi, &value) {
                        Some(member) => {
                            dirty.insert(member);
                            let cls = self.classes.entry(member).or_default();
                            let e = cls
                                .rows
                                .entry(mi)
                                .or_default()
                                .entry(row.clone())
                                .or_insert((0, 0));
                            e.0 += k;
                            e.1 |= 1 << bi;
                        }
                        None => fresh_mask |= 1 << bi,
                    }
                }
                if fresh_mask != 0 {
                    fresh.push((mi, row.clone(), k, fresh_mask));
                }
            }
        }

        // Phase 5: rebuild dirty classes and insert fresh members via a
        // transient exchange over the live target state.
        let mut ex = Exchange::new(Vec::new(), &self.target_schema, &self.functions);
        ex.target = std::mem::replace(&mut self.target, Instance::new("swap"));
        ex.merge_index = std::mem::take(&mut self.merge_index);
        ex.set_budget(&self.opts.budget);
        if let Some(f) = self.member_fp {
            ex.set_member_fingerprinter(f);
        }
        let mut shapes: Vec<Vec<Option<MemberShape>>> = self
            .plans
            .iter()
            .map(|p| {
                let mut v: Vec<Option<MemberShape>> = Vec::new();
                v.resize_with(p.bindings.len(), || None);
                v
            })
            .collect();
        let mut result = rebuild_classes(
            &mut ex,
            &mut shapes,
            &dirty,
            fresh,
            &mut td,
            &self.mappings,
            &self.plans,
            &self.root_of,
            &mut self.classes,
            self.opts.member_templates,
        );
        if result.is_ok() {
            // Phase 6: skeleton annotation sync for mappings whose bag
            // emptied, then element re-annotation of the whole target.
            sync_skeletons(&mut ex, &self.mappings, &self.plans, &self.bags);
            result = ex
                .target
                .annotate_elements(&self.target_schema)
                .map_err(|e| DeltaError::Exchange(ExchangeError::Conformance(e.to_string())));
        }
        self.target = ex.target;
        self.merge_index = ex.merge_index;
        result.map(|()| td)
    }

    /// The member values each `Parent::Root` binding of `plan` produces for
    /// one foreach row — pure (no insertion), mirroring
    /// [`Exchange::insert_row`]'s slot-class assignment and member
    /// construction exactly, including its conflict error.
    fn root_member_values(
        &self,
        mi: usize,
        row: &Row,
    ) -> Result<Vec<(usize, Value)>, ExchangeError> {
        let plan = &self.plans[mi];
        let m = &self.mappings[mi];
        let mut class_values: Vec<Option<AtomicValue>> = vec![None; plan.n_classes];
        for (i, &c) in plan.select_classes.iter().enumerate() {
            match &class_values[c] {
                None => class_values[c] = Some(row[i].clone()),
                Some(prev) if *prev == row[i] => {}
                Some(prev) => {
                    return Err(ExchangeError::Conflict(format!(
                        "mapping {}: positions assign `{prev}` and `{}` to one slot",
                        m.name, row[i]
                    )))
                }
            }
        }
        let mut out = Vec::new();
        for (bi, b) in plan.bindings.iter().enumerate() {
            if !matches!(b.parent, Parent::Root(..)) {
                continue;
            }
            let fields: Vec<(&[dtr_query::ast::Step], AtomicValue)> = b
                .fields
                .iter()
                .filter_map(|(steps, c)| {
                    class_values[*c]
                        .as_ref()
                        .map(|v| (steps.as_slice(), v.clone()))
                })
                .collect();
            out.push((
                bi,
                build_member_reference(&self.target_schema, b.member_elem, &fields)?,
            ));
        }
        Ok(out)
    }

    /// Looks a member value up in the live merge index under the skeleton
    /// set of root binding `bi`. `None` when the set or the member does not
    /// exist yet.
    fn find_member(&self, plan: &Plan, bi: usize, value: &Value) -> Option<NodeId> {
        let Parent::Root(root, steps) = &plan.bindings[bi].parent else {
            return None;
        };
        let mut node = self.target.root(root.as_str())?;
        for label in steps {
            node = self.target.child_by_label(node, label)?;
        }
        let fp = match self.member_fp {
            Some(f) => f(value),
            None => {
                let mut h = DefaultHasher::new();
                value_fingerprint(value, &mut h);
                h.finish()
            }
        };
        self.merge_index
            .get(&(node, fp))?
            .iter()
            .find(|(v, _)| v == value)
            .map(|&(_, n)| n)
    }

    /// Regenerates the report from bags, plans and per-class statistics:
    /// `tuples` is the bag size, `bindings = tuples × |plan|`, and
    /// `rows_inserted` sums the min-mapping insert events over all classes
    /// — the same attribution a full exchange's execution order produces.
    fn synthesize_report(&mut self) {
        let n = self.mappings.len();
        let mut inserted = vec![0usize; n];
        for cls in self.classes.values() {
            for (&mi, &(ins, _)) in &cls.stats {
                inserted[mi] += ins;
            }
        }
        let mut report = ExchangeReport::default();
        for (mi, m) in self.mappings.iter().enumerate() {
            let tuples: usize = self.bags[mi].values().sum();
            let bindings = tuples * self.plans[mi].bindings.len();
            report.tuples.push((m.name.clone(), tuples));
            report.per_mapping.push(MappingStats {
                mapping: m.name.clone(),
                tuples,
                bindings,
                rows_inserted: inserted[mi],
                rows_merged: bindings.saturating_sub(inserted[mi]),
                ..MappingStats::default()
            });
        }
        self.report = report;
    }
}

/// Detaches and replays every dirty class, then inserts the fresh rows
/// (members that did not exist before this batch), all in mapping order
/// within each class.
#[allow(clippy::too_many_arguments)]
fn rebuild_classes(
    ex: &mut Exchange<'_>,
    shapes: &mut [Vec<Option<MemberShape>>],
    dirty: &HashSet<NodeId>,
    fresh: Vec<(usize, Row, usize, u64)>,
    td: &mut TargetDelta,
    mappings: &[Mapping],
    plans: &[Plan],
    roots: &[Vec<usize>],
    classes: &mut HashMap<NodeId, ClassState>,
    member_templates: bool,
) -> Result<(), DeltaError> {
    let mut order: Vec<NodeId> = dirty.iter().copied().collect();
    order.sort_unstable();
    for member in order {
        let cls = match classes.remove(&member) {
            Some(c) => c,
            None => continue,
        };
        let set_path = ex.target.node_path(cls.set);
        // Detach: unlink the member, strip its annotations, and prune
        // every merge-index entry rooted in its subtree (plus its own
        // bucket slot) so the replay starts from a clean slate.
        ex.target.detach_set_member(cls.set, member);
        let subtree: HashSet<NodeId> = subtree_nodes(&ex.target, member);
        ex.target.strip_annotations(member);
        if let Some(bucket) = ex.merge_index.get_mut(&(cls.set, cls.fp)) {
            bucket.retain(|&(_, n)| n != member);
            if bucket.is_empty() {
                ex.merge_index.remove(&(cls.set, cls.fp));
            }
        }
        ex.merge_index
            .retain(|&(set, _), _| !subtree.contains(&set));
        td.retracted.push(TargetChange {
            set_path: set_path.clone(),
            member: member.0,
        });
        if dtr_obs::journal::enabled() {
            dtr_obs::journal::record(
                dtr_obs::journal::event(
                    "exchange.retract",
                    dtr_obs::journal::Outcome::Retracted {
                        remaining: cls.remaining_rows() as u64,
                    },
                )
                .binding(cls.fp)
                .target(u64::from(member.0)),
            );
        }
        if cls.is_drained() {
            continue;
        }
        td.classes_rebuilt += 1;
        let mut replayed: HashMap<NodeId, ClassState> = HashMap::new();
        for (&mi, per) in &cls.rows {
            let plan = &plans[mi];
            let root_of = &roots[mi];
            let mut stats = MappingStats::default();
            // Deterministic replay order: nested sets inside the rebuilt
            // member are populated row by row, so recovery must insert in
            // the same sequence the live engine did.
            let mut rows: Vec<(&Row, (usize, u64))> =
                per.iter().map(|(row, &e)| (row, e)).collect();
            rows.sort_unstable_by_key(|(row, _)| row_order_key(row));
            for (row, (count, bits)) in rows {
                let mask: Vec<bool> = root_of.iter().map(|&r| bits & (1 << r) != 0).collect();
                for _ in 0..count {
                    ex.meter.charge_rows(1).map_err(|g| ExchangeError::Guard {
                        error: g,
                        mappings_completed: 0,
                    })?;
                    let touches = ex.insert_row(
                        &mappings[mi],
                        plan,
                        row,
                        member_templates,
                        &mut shapes[mi],
                        &mut stats,
                        Some(&mask),
                    )?;
                    record_row(&mut replayed, root_of, &touches, mi, row);
                }
            }
        }
        // The replay converges on exactly one new top-level member (the
        // class identity is one member value); adopt its node id.
        debug_assert_eq!(replayed.len(), 1, "class replay must rebuild one member");
        for (new_member, new_cls) in replayed {
            td.inserted.push(TargetChange {
                set_path: set_path.clone(),
                member: new_member.0,
            });
            classes.insert(new_member, new_cls);
        }
    }
    // Fresh members: rows whose class did not exist before this batch.
    let mut by_mapping: BTreeMap<usize, Vec<(Row, usize, u64)>> = BTreeMap::new();
    for (mi, row, count, bits) in fresh {
        by_mapping.entry(mi).or_default().push((row, count, bits));
    }
    let mut fresh_members: Vec<(NodeId, NodeId)> = Vec::new();
    for (mi, rows) in by_mapping {
        let plan = &plans[mi];
        let root_of = &roots[mi];
        let mut stats = MappingStats::default();
        for (row, count, bits) in rows {
            let mask: Vec<bool> = root_of.iter().map(|&r| bits & (1 << r) != 0).collect();
            for _ in 0..count {
                ex.meter.charge_rows(1).map_err(|g| ExchangeError::Guard {
                    error: g,
                    mappings_completed: 0,
                })?;
                let touches = ex.insert_row(
                    &mappings[mi],
                    plan,
                    &row,
                    member_templates,
                    &mut shapes[mi],
                    &mut stats,
                    Some(&mask),
                )?;
                for (bi, t) in touches.iter().enumerate() {
                    if t.member.0 != u32::MAX && root_of[bi] == bi && t.created {
                        fresh_members.push((t.set, t.member));
                    }
                }
                record_row(classes, root_of, &touches, mi, &row);
            }
        }
    }
    fresh_members.sort_unstable_by_key(|&(_, m)| m.0);
    fresh_members.dedup();
    for (set, member) in fresh_members {
        td.inserted.push(TargetChange {
            set_path: ex.target.node_path(set),
            member: member.0,
        });
    }
    Ok(())
}

/// Removes the `f_mp` names of mappings whose row bag emptied from their
/// skeleton chains, then detaches chain nodes left with no annotations and
/// no children (schema roots always stay) — matching what a from-scratch
/// exchange over the current sources would build.
fn sync_skeletons(ex: &mut Exchange<'_>, mappings: &[Mapping], plans: &[Plan], bags: &[Bag]) {
    let mut candidates: Vec<NodeId> = Vec::new();
    for (mi, m) in mappings.iter().enumerate() {
        if !bags[mi].is_empty() {
            continue;
        }
        for b in &plans[mi].bindings {
            let Parent::Root(root, steps) = &b.parent else {
                continue;
            };
            let Some(mut node) = ex.target.root(root.as_str()) else {
                continue;
            };
            ex.target.remove_mapping(node, &m.name);
            for label in steps {
                match ex.target.child_by_label(node, label) {
                    Some(c) => {
                        node = c;
                        ex.target.remove_mapping(node, &m.name);
                        candidates.push(node);
                    }
                    None => break,
                }
            }
        }
    }
    // Deepest nodes first so a drained set detaches before its (then
    // childless) record parent is considered.
    candidates.sort_unstable_by_key(|n| std::cmp::Reverse(n.0));
    candidates.dedup();
    for node in candidates {
        let unreferenced =
            ex.target.children(node).is_empty() && ex.target.annotation(node).mappings.is_empty();
        if !unreferenced {
            continue;
        }
        if let Some(parent) = ex.target.parent(node) {
            let kids: Vec<NodeId> = ex
                .target
                .children(parent)
                .iter()
                .copied()
                .filter(|&k| k != node)
                .collect();
            ex.target.replace_children(parent, kids);
            ex.target.strip_annotations(node);
        }
    }
}

/// Borrowed evaluator views over owned source instances.
fn source_views<'a>(schemas: &'a [Schema], instances: &'a [Instance]) -> Vec<Source<'a>> {
    schemas
        .iter()
        .zip(instances)
        .map(|(schema, instance)| Source { schema, instance })
        .collect()
}

/// All nodes of the subtree rooted at `id` (the root included).
fn subtree_nodes(inst: &Instance, id: NodeId) -> HashSet<NodeId> {
    let mut out = HashSet::new();
    let mut stack = vec![id];
    while let Some(n) = stack.pop() {
        if out.insert(n) {
            stack.extend_from_slice(inst.children(n));
        }
    }
    out
}

/// Folds one row's binding touches into the class index: registers the row
/// under each touched root binding's class (bitmask-tagged) and attributes
/// every member-binding insert/merge event to its root class.
fn record_row(
    classes: &mut HashMap<NodeId, ClassState>,
    root_of: &[usize],
    touches: &[BindingTouch],
    mi: usize,
    row: &Row,
) {
    let mut class_masks: Vec<(NodeId, u64)> = Vec::new();
    for (bi, t) in touches.iter().enumerate() {
        if t.member.0 == u32::MAX || root_of[bi] != bi {
            continue;
        }
        let cls = classes.entry(t.member).or_default();
        cls.set = t.set;
        cls.fp = t.fp;
        match class_masks.iter_mut().find(|(ck, _)| *ck == t.member) {
            Some((_, m)) => *m |= 1 << bi,
            None => class_masks.push((t.member, 1 << bi)),
        }
    }
    for &(ck, mask) in &class_masks {
        let cls = classes.get_mut(&ck).expect("class registered above");
        let e = cls
            .rows
            .entry(mi)
            .or_default()
            .entry(row.clone())
            .or_insert((0, 0));
        e.0 += 1;
        e.1 |= mask;
    }
    for (bi, t) in touches.iter().enumerate() {
        if t.member.0 == u32::MAX {
            continue;
        }
        let ck = touches[root_of[bi]].member;
        if let Some(cls) = classes.get_mut(&ck) {
            let s = cls.stats.entry(mi).or_insert((0, 0));
            if t.created {
                s.0 += 1;
            } else {
                s.1 += 1;
            }
        }
    }
}

/// `(old − new, new − old)` as multisets.
fn bag_diff(old: &Bag, new: &Bag) -> (Bag, Bag) {
    let mut removed = Bag::new();
    let mut added = Bag::new();
    for (row, &n) in old {
        let m = new.get(row).copied().unwrap_or(0);
        if n > m {
            removed.insert(row.clone(), n - m);
        }
    }
    for (row, &n) in new {
        let m = old.get(row).copied().unwrap_or(0);
        if n > m {
            added.insert(row.clone(), n - m);
        }
    }
    (removed, added)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exchange::execute_mappings_with;
    use dtr_model::instance::NodeData;
    use dtr_model::types::{AtomicType, Type};

    fn us_schema() -> Schema {
        Schema::build(
            "USdb",
            vec![(
                "US",
                Type::record(vec![
                    (
                        "houses",
                        Type::relation(vec![
                            ("hid", AtomicType::String),
                            ("floors", AtomicType::String),
                            ("price", AtomicType::String),
                            ("aid", AtomicType::String),
                        ]),
                    ),
                    (
                        "agents",
                        Type::set(Type::record(vec![
                            ("aid", Type::string()),
                            (
                                "title",
                                Type::choice(vec![
                                    ("name", Type::string()),
                                    ("firm", Type::string()),
                                ]),
                            ),
                            ("phone", Type::string()),
                        ])),
                    ),
                ]),
            )],
        )
        .unwrap()
    }

    fn eu_schema() -> Schema {
        Schema::build(
            "EUdb",
            vec![(
                "EU",
                Type::record(vec![(
                    "postings",
                    Type::set(Type::record(vec![
                        ("hid", Type::string()),
                        ("levels", Type::string()),
                        ("totalVal", Type::string()),
                        (
                            "agents",
                            Type::set(Type::record(vec![
                                ("agentName", Type::string()),
                                ("agentPhone", Type::string()),
                            ])),
                        ),
                    ])),
                )]),
            )],
        )
        .unwrap()
    }

    fn portal_schema() -> Schema {
        Schema::build(
            "Pdb",
            vec![(
                "Portal",
                Type::record(vec![
                    (
                        "estates",
                        Type::relation(vec![
                            ("hid", AtomicType::String),
                            ("stories", AtomicType::String),
                            ("value", AtomicType::String),
                            ("contact", AtomicType::String),
                        ]),
                    ),
                    (
                        "contacts",
                        Type::relation(vec![
                            ("title", AtomicType::String),
                            ("phone", AtomicType::String),
                        ]),
                    ),
                ]),
            )],
        )
        .unwrap()
    }

    fn house(hid: &str, floors: &str, price: &str, aid: &str) -> Value {
        Value::record(vec![
            ("hid", Value::str(hid)),
            ("floors", Value::str(floors)),
            ("price", Value::str(price)),
            ("aid", Value::str(aid)),
        ])
    }

    fn agent(aid: &str, alt: &str, title: &str, phone: &str) -> Value {
        Value::record(vec![
            ("aid", Value::str(aid)),
            ("title", Value::choice(alt, Value::str(title))),
            ("phone", Value::str(phone)),
        ])
    }

    fn posting(hid: &str, levels: &str, total: &str, agents: Vec<(&str, &str)>) -> Value {
        Value::record(vec![
            ("hid", Value::str(hid)),
            ("levels", Value::str(levels)),
            ("totalVal", Value::str(total)),
            (
                "agents",
                Value::set(
                    agents
                        .into_iter()
                        .map(|(n, p)| {
                            Value::record(vec![
                                ("agentName", Value::str(n)),
                                ("agentPhone", Value::str(p)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn us_instance() -> Instance {
        let mut inst = Instance::new("USdb");
        inst.install_root(
            "US",
            Value::record(vec![
                (
                    "houses",
                    Value::set(vec![
                        house("H522", "2", "500K", "a2"),
                        house("H7", "1", "250K", "a1"),
                    ]),
                ),
                (
                    "agents",
                    Value::set(vec![
                        agent("a1", "name", "Smith", "555-1111"),
                        agent("a2", "firm", "HomeGain", "18009468501"),
                    ]),
                ),
            ]),
        );
        inst.annotate_elements(&us_schema()).unwrap();
        inst
    }

    fn eu_instance() -> Instance {
        let mut inst = Instance::new("EUdb");
        inst.install_root(
            "EU",
            Value::record(vec![(
                "postings",
                Value::set(vec![posting(
                    "H2525",
                    "1",
                    "300K",
                    vec![("HomeGain", "18009468501")],
                )]),
            )]),
        );
        inst.annotate_elements(&eu_schema()).unwrap();
        inst
    }

    fn figure1_mappings() -> Vec<Mapping> {
        vec![
            Mapping::parse(
                "m1",
                "foreach
                   select h.hid, h.floors, h.price, n, a.phone
                   from US.houses h, US.agents a, a.title->name n
                   where h.aid = a.aid
                 exists
                   select e.hid, e.stories, e.value, c.title, c.phone
                   from Portal.estates e, Portal.contacts c
                   where e.contact = c.title",
            )
            .unwrap(),
            Mapping::parse(
                "m2",
                "foreach
                   select h.hid, h.floors, h.price, f, a.phone
                   from US.houses h, US.agents a, a.title->firm f
                   where h.aid = a.aid
                 exists
                   select e.hid, e.stories, e.value, c.title, c.phone
                   from Portal.estates e, Portal.contacts c
                   where e.contact = c.title",
            )
            .unwrap(),
            Mapping::parse(
                "m3",
                "foreach
                   select p.hid, p.levels, p.totalVal, a.agentName, a.agentPhone
                   from EU.postings p, p.agents a
                 exists
                   select e.hid, e.stories, e.value, c.title, c.phone
                   from Portal.estates e, Portal.contacts c
                   where e.contact = c.title",
            )
            .unwrap(),
        ]
    }

    /// Order-insensitive canonical rendering of an annotated instance: set
    /// members are sorted by their rendering, annotations ride along.
    fn canon_node(inst: &Instance, id: NodeId) -> String {
        let ann = inst.annotation(id);
        let el = ann.element.map(|e| format!("e{}", e.0)).unwrap_or_default();
        let maps: Vec<String> = ann.mappings.iter().map(|m| m.to_string()).collect();
        let body = match &inst.node(id).data {
            NodeData::Atomic(a) => format!("={a}"),
            NodeData::Record(kids) => {
                let inner: Vec<String> = kids.iter().map(|&k| canon_node(inst, k)).collect();
                format!("{{{}}}", inner.join(","))
            }
            NodeData::Choice(kid) => match kid {
                Some(k) => format!("<{}>", canon_node(inst, *k)),
                None => "<>".to_string(),
            },
            NodeData::Set(kids) => {
                let mut inner: Vec<String> = kids.iter().map(|&k| canon_node(inst, k)).collect();
                inner.sort();
                format!("[{}]", inner.join(","))
            }
        };
        format!("{}⟨{};{}⟩{}", inst.label(id), el, maps.join("+"), body)
    }

    fn canon(inst: &Instance) -> String {
        let mut roots: Vec<String> = inst.roots().iter().map(|&r| canon_node(inst, r)).collect();
        roots.sort();
        roots.join("\n")
    }

    fn build() -> IncrementalExchange {
        IncrementalExchange::new(
            vec![us_schema(), eu_schema()],
            vec![us_instance(), eu_instance()],
            portal_schema(),
            figure1_mappings(),
            FunctionRegistry::with_builtins(),
            ExchangeOptions::default(),
        )
        .unwrap()
    }

    /// Comparable per-mapping report row: (mapping, tuples, bindings,
    /// rows_inserted, rows_merged).
    type DecisionRow = (String, usize, usize, usize, usize);

    /// Full re-exchange over the engine's current sources; returns the
    /// canonical target plus the comparable report rows.
    fn full_reference(inc: &IncrementalExchange) -> (String, Vec<DecisionRow>) {
        let views = source_views(inc.source_schemas(), inc.sources());
        let (inst, report) = execute_mappings_with(
            &views,
            inc.target_schema(),
            inc.mappings(),
            &FunctionRegistry::with_builtins(),
            &ExchangeOptions::default(),
        )
        .unwrap();
        let rows = report
            .per_mapping
            .iter()
            .map(|s| {
                (
                    s.mapping.to_string(),
                    s.tuples,
                    s.bindings,
                    s.rows_inserted,
                    s.rows_merged,
                )
            })
            .collect();
        (canon(&inst), rows)
    }

    fn assert_matches_full(inc: &IncrementalExchange) {
        let (want, want_rows) = full_reference(inc);
        assert_eq!(canon(inc.target()), want, "incremental target diverged");
        let got_rows: Vec<(String, usize, usize, usize, usize)> = inc
            .report()
            .per_mapping
            .iter()
            .map(|s| {
                (
                    s.mapping.to_string(),
                    s.tuples,
                    s.bindings,
                    s.rows_inserted,
                    s.rows_merged,
                )
            })
            .collect();
        assert_eq!(got_rows, want_rows, "synthesized report diverged");
    }

    #[test]
    fn initial_build_matches_full_exchange() {
        let inc = build();
        assert_matches_full(&inc);
    }

    #[test]
    fn insert_delete_modify_stream_tracks_full_reexchange() {
        let mut inc = build();
        let steps: Vec<SourceDelta> = vec![
            // New house handled by the existing named agent: m1 gains a row.
            SourceDelta::new().insert("US.houses", house("H9", "3", "900K", "a1")),
            // New agent plus a posting churn on the other source.
            SourceDelta::new()
                .insert("US.agents", agent("a3", "name", "Jones", "555-2222"))
                .insert(
                    "EU.postings",
                    posting("H77", "2", "410K", vec![("Ads", "555-0000")]),
                ),
            // Delete the firm agent: m2's only row retracts.
            SourceDelta::new().delete("US.agents", 1),
            // Modify flips a choice alternative: Smith becomes a firm, so
            // every m1 row retracts and m2 gains rows.
            SourceDelta::new().modify("US.agents", 0, agent("a1", "firm", "SmithCo", "555-1111")),
            // Churn a posting's nested agents (PNF re-merge path).
            SourceDelta::new().modify(
                "EU.postings",
                0,
                posting(
                    "H2525",
                    "1",
                    "300K",
                    vec![("Ads", "555-0000"), ("More", "555-9999")],
                ),
            ),
            // Drain a whole set.
            SourceDelta::new()
                .delete("US.houses", 0)
                .delete("US.houses", 0)
                .delete("US.houses", 0),
        ];
        for (i, delta) in steps.iter().enumerate() {
            inc.apply(delta).unwrap_or_else(|e| panic!("step {i}: {e}"));
            assert_matches_full(&inc);
        }
    }

    #[test]
    fn untouched_mappings_are_pruned() {
        let mut inc = build();
        let td = inc
            .apply(
                &SourceDelta::new()
                    .insert("EU.postings", posting("H1", "1", "100K", vec![("A", "1")])),
            )
            .unwrap();
        // m1 and m2 read only USdb; m3 is the single re-evaluated mapping.
        assert_eq!(td.mappings_pruned, 2);
        assert_eq!(td.mappings_reevaluated, 1);
        assert_matches_full(&inc);
    }

    #[test]
    fn insert_then_delete_in_one_batch_is_a_noop() {
        let mut inc = build();
        let before = canon(inc.target());
        let td = inc
            .apply(
                &SourceDelta::new()
                    .insert("US.houses", house("HX", "9", "1", "a1"))
                    .delete("US.houses", 2),
            )
            .unwrap();
        assert!(td.is_noop(), "expected no-op, got {td:?}");
        assert_eq!(canon(inc.target()), before);
        assert_matches_full(&inc);
    }

    #[test]
    fn bad_edits_leave_engine_untouched() {
        let mut inc = build();
        let before = canon(inc.target());
        let before_src = canon(&inc.sources()[0]);
        let err = inc
            .apply(&SourceDelta::new().delete("US.nosuch", 0))
            .unwrap_err();
        assert!(matches!(err, DeltaError::Path(_)));
        let err = inc
            .apply(&SourceDelta::new().delete("US.houses", 99))
            .unwrap_err();
        assert!(matches!(err, DeltaError::Index(_)));
        assert_eq!(canon(inc.target()), before);
        assert_eq!(canon(&inc.sources()[0]), before_src);
        assert_matches_full(&inc);
    }

    #[test]
    fn rebase_resets_and_reproduces() {
        let mut inc = build();
        inc.apply(&SourceDelta::new().insert("US.houses", house("H9", "3", "900K", "a1")))
            .unwrap();
        assert_eq!(inc.batch(), 1);
        inc.rebase().unwrap();
        assert_eq!(inc.batch(), 0);
        assert_matches_full(&inc);
    }

    #[test]
    fn batch_equals_singletons_applied_in_order() {
        let mut batched = build();
        let mut single = build();
        let delta = SourceDelta::new()
            .insert("US.houses", house("H9", "3", "900K", "a1"))
            .delete("US.agents", 1)
            .insert(
                "EU.postings",
                posting("H77", "2", "410K", vec![("Ads", "0")]),
            );
        batched.apply(&delta).unwrap();
        for e in &delta.edits {
            single
                .apply(&SourceDelta {
                    edits: vec![e.clone()],
                })
                .unwrap();
        }
        assert_eq!(canon(batched.target()), canon(single.target()));
    }
}
