//! Static well-formedness checking and schema resolution (Section 4.2).
//!
//! A *well-formed query* binds each variable to a set, a union choice, an
//! `@map` operator, or a set-valued function call; uses variables only after
//! their definition; and compares/selects only atomic-typed expressions.
//! This module checks those rules against a catalog of schemas and resolves
//! every path expression to the schema element it *refers to* — the
//! resolution the mapping triple `⟨Es, Et, Wc⟩` of Section 4.3 is built from.

use crate::ast::*;
use dtr_model::schema::{ElementId, ElementKind, Schema};
use dtr_model::types::AtomicType;
use std::collections::HashMap;
use std::fmt;

/// A set of schemas (data sources) that queries can reference.
#[derive(Clone)]
pub struct SchemaCatalog<'a> {
    schemas: Vec<&'a Schema>,
}

impl<'a> SchemaCatalog<'a> {
    /// Builds a catalog from schemas. Root labels should be unique across
    /// the catalog (the paper's queries address roots without database
    /// qualifiers).
    pub fn new(schemas: Vec<&'a Schema>) -> Self {
        SchemaCatalog { schemas }
    }

    /// The schemas in the catalog.
    pub fn schemas(&self) -> &[&'a Schema] {
        &self.schemas
    }

    /// Finds `(catalog index, root element)` for a schema root label.
    pub fn find_root(&self, label: &str) -> Option<(usize, ElementId)> {
        self.schemas
            .iter()
            .enumerate()
            .find_map(|(i, s)| s.root(label).map(|e| (i, e)))
    }

    /// Finds a schema by database name.
    pub fn by_name(&self, db: &str) -> Option<(usize, &'a Schema)> {
        self.schemas
            .iter()
            .enumerate()
            .find(|(_, s)| s.name() == db)
            .map(|(i, s)| (i, *s))
    }

    /// The schema at a catalog index.
    pub fn schema(&self, idx: usize) -> &'a Schema {
        self.schemas[idx]
    }
}

/// What a query variable denotes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarTarget {
    /// Bound to values of a schema element (set member or choice
    /// alternative): `(catalog index, element)`.
    Element(usize, ElementId),
    /// Bound by an `@map` operator or a mapping-predicate position: ranges
    /// over `Mapping` values.
    Mapping,
    /// Implicitly bound by a mapping-predicate database position.
    Database,
    /// Implicitly bound by a mapping-predicate element position, or by an
    /// `@elem` comparison: ranges over `Element` values.
    SchemaElement,
    /// Bound to the results of a function call of unknown type.
    Opaque,
}

/// The static type of an expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExprKind {
    /// An atomic value of a schema element.
    Atomic(usize, ElementId, AtomicType),
    /// A complex value of a schema element (only valid as a binding source
    /// or an intermediate).
    Complex(usize, ElementId, ElementKind),
    /// An atomic constant or meta value with no schema element.
    Meta(AtomicType),
    /// A function call result of unknown type.
    Opaque,
}

impl ExprKind {
    /// The schema element the expression refers to, if any.
    pub fn element(&self) -> Option<(usize, ElementId)> {
        match self {
            ExprKind::Atomic(s, e, _) | ExprKind::Complex(s, e, _) => Some((*s, *e)),
            _ => None,
        }
    }

    /// The atomic type, if statically known and atomic.
    pub fn atomic_type(&self) -> Option<AtomicType> {
        match self {
            ExprKind::Atomic(_, _, t) | ExprKind::Meta(t) => Some(*t),
            _ => None,
        }
    }
}

/// The result of checking a query: variable targets plus resolution
/// helpers.
pub struct Resolved<'a> {
    cat: SchemaCatalog<'a>,
    /// Target of every variable (declared and implicit).
    pub vars: HashMap<Var, VarTarget>,
}

impl<'a> Resolved<'a> {
    /// The catalog the query was resolved against.
    pub fn catalog(&self) -> &SchemaCatalog<'a> {
        &self.cat
    }

    /// Resolves a path expression to its kind.
    pub fn path_kind(&self, p: &PathExpr) -> Result<ExprKind, CheckError> {
        let (schema_idx, mut cur) = match &p.start {
            PathStart::Root(r) => self
                .cat
                .find_root(r)
                .ok_or_else(|| CheckError::UnknownRoot(r.to_string()))?,
            PathStart::Var(v) => match self.vars.get(v.as_str()) {
                Some(VarTarget::Element(s, e)) => (*s, *e),
                Some(VarTarget::Mapping) => {
                    return if p.steps.is_empty() {
                        Ok(ExprKind::Meta(AtomicType::Mapping))
                    } else {
                        Err(CheckError::StepOnMeta(v.clone()))
                    }
                }
                Some(VarTarget::Database) => {
                    return if p.steps.is_empty() {
                        Ok(ExprKind::Meta(AtomicType::Database))
                    } else {
                        Err(CheckError::StepOnMeta(v.clone()))
                    }
                }
                Some(VarTarget::SchemaElement) => {
                    return if p.steps.is_empty() {
                        Ok(ExprKind::Meta(AtomicType::Element))
                    } else {
                        Err(CheckError::StepOnMeta(v.clone()))
                    }
                }
                Some(VarTarget::Opaque) => return Ok(ExprKind::Opaque),
                None => return Err(CheckError::UndefinedVariable(v.clone())),
            },
        };
        for step in &p.steps {
            let schema = self.cat.schema(schema_idx);
            match step {
                Step::Project(l) => {
                    let kind = schema.element(cur).kind;
                    if kind != ElementKind::Record {
                        return Err(CheckError::ProjectOnNonRecord {
                            path: p.to_string(),
                            label: l.to_string(),
                        });
                    }
                    cur = schema
                        .child(cur, l)
                        .ok_or_else(|| CheckError::UnknownAttribute {
                            path: p.to_string(),
                            label: l.to_string(),
                        })?;
                }
                Step::Choice(l) => {
                    let kind = schema.element(cur).kind;
                    if kind != ElementKind::Choice {
                        return Err(CheckError::ChoiceOnNonChoice {
                            path: p.to_string(),
                            label: l.to_string(),
                        });
                    }
                    cur = schema
                        .child(cur, l)
                        .ok_or_else(|| CheckError::UnknownAttribute {
                            path: p.to_string(),
                            label: l.to_string(),
                        })?;
                }
            }
        }
        let schema = self.cat.schema(schema_idx);
        Ok(match schema.element(cur).kind {
            ElementKind::Atomic(t) => ExprKind::Atomic(schema_idx, cur, t),
            k => ExprKind::Complex(schema_idx, cur, k),
        })
    }

    /// Resolves an arbitrary expression to its kind.
    pub fn expr_kind(&self, e: &Expr) -> Result<ExprKind, CheckError> {
        match e {
            Expr::Path(p) => self.path_kind(p),
            Expr::Const(c) => Ok(ExprKind::Meta(c.atomic_type())),
            Expr::ElemOf(p) => {
                self.path_kind(p)?;
                Ok(ExprKind::Meta(AtomicType::Element))
            }
            Expr::MapOf(p) => {
                self.path_kind(p)?;
                Ok(ExprKind::Meta(AtomicType::Mapping))
            }
            Expr::Call(_, args) => {
                for a in args {
                    self.expr_kind(a)?;
                }
                Ok(ExprKind::Opaque)
            }
        }
    }

    /// The schema element a path expression *refers to* (Section 4.2:
    /// "Each expression refers to a specific schema element"). Returns
    /// `(catalog index, element)` or `None` for meta/opaque expressions.
    pub fn expr_element(&self, e: &Expr) -> Option<(usize, ElementId)> {
        let inner = match e {
            Expr::Path(p) | Expr::ElemOf(p) | Expr::MapOf(p) => p,
            _ => return None,
        };
        self.path_kind(inner).ok().and_then(|k| k.element())
    }
}

/// Checks a query against a catalog of schemas and resolves its variables.
pub fn check_query<'a>(q: &Query, cat: SchemaCatalog<'a>) -> Result<Resolved<'a>, CheckError> {
    let mut resolved = Resolved {
        cat,
        vars: HashMap::new(),
    };

    // Mapping-predicate variables are implicitly defined by their position
    // (Section 5); register them first so bindings like `c.title@map m` can
    // agree with predicate uses of `m`.
    for c in &q.conditions {
        if let Condition::MapPred(p) = c {
            for (term, target) in [
                (&p.src_db, VarTarget::Database),
                (&p.src_elem, VarTarget::SchemaElement),
                (&p.mapping, VarTarget::Mapping),
                (&p.tgt_db, VarTarget::Database),
                (&p.tgt_elem, VarTarget::SchemaElement),
            ] {
                if let Term::Var(v) = term {
                    if let Some(prev) = resolved.vars.get(v.as_str()) {
                        if *prev != target {
                            return Err(CheckError::ConflictingVariable(v.clone()));
                        }
                    }
                    resolved.vars.insert(v.clone(), target);
                }
            }
        }
    }

    // From-clause bindings, in order.
    for b in &q.from {
        let target = match &b.source {
            Expr::Path(p) => match resolved.path_kind(p)? {
                ExprKind::Complex(s, e, ElementKind::Set) => {
                    let member = resolved
                        .cat
                        .schema(s)
                        .set_member(e)
                        .expect("set element has a member");
                    VarTarget::Element(s, member)
                }
                // A choice-selection binding: the variable binds to the
                // element under the choice (Section 4.2).
                ExprKind::Atomic(s, e, _) | ExprKind::Complex(s, e, _)
                    if matches!(p.steps.last(), Some(Step::Choice(_))) =>
                {
                    VarTarget::Element(s, e)
                }
                other => {
                    return Err(CheckError::InvalidBindingSource {
                        var: b.var.clone(),
                        found: format!("{other:?}"),
                    })
                }
            },
            Expr::MapOf(p) => {
                resolved.path_kind(p)?;
                VarTarget::Mapping
            }
            Expr::Call(_, args) => {
                for a in args {
                    resolved.expr_kind(a)?;
                }
                VarTarget::Opaque
            }
            other => {
                return Err(CheckError::InvalidBindingSource {
                    var: b.var.clone(),
                    found: format!("{other}"),
                })
            }
        };
        if let Some(prev) = resolved.vars.get(b.var.as_str()) {
            // A predicate variable may coincide with a declared one (m in
            // Example 5.5) if the targets agree.
            if *prev != target {
                return Err(CheckError::ConflictingVariable(b.var.clone()));
            }
        }
        resolved.vars.insert(b.var.clone(), target);
    }

    // Duplicate detection (two bindings of the same name).
    let mut seen: Vec<&str> = Vec::new();
    for b in &q.from {
        if seen.contains(&b.var.as_str()) {
            return Err(CheckError::DuplicateVariable(b.var.clone()));
        }
        seen.push(&b.var);
    }

    // Select items must be atomic-typed (or meta/opaque).
    for e in &q.select {
        if let ExprKind::Complex(_, _, k) = resolved.expr_kind(e)? {
            return Err(CheckError::NonAtomicSelect {
                expr: e.to_string(),
                kind: k.name().to_string(),
            });
        }
    }

    // Comparisons must relate compatible atomic types.
    for c in &q.conditions {
        if let Condition::Cmp(cmp) = c {
            let lk = resolved.expr_kind(&cmp.left)?;
            let rk = resolved.expr_kind(&cmp.right)?;
            if let (ExprKind::Complex(..), _) | (_, ExprKind::Complex(..)) = (&lk, &rk) {
                return Err(CheckError::NonAtomicComparison(cmp.to_string()));
            }
            if let (Some(lt), Some(rt)) = (lk.atomic_type(), rk.atomic_type()) {
                let numeric = |t: AtomicType| matches!(t, AtomicType::Integer | AtomicType::Float);
                // A plain string constant may be compared against a meta
                // value (constants in MXQL queries denote databases and
                // element paths; Section 5's examples write them as quoted
                // strings).
                let stringly = |t: AtomicType| {
                    matches!(
                        t,
                        AtomicType::String
                            | AtomicType::Database
                            | AtomicType::Element
                            | AtomicType::Mapping
                    )
                };
                let compatible =
                    lt == rt || (numeric(lt) && numeric(rt)) || (stringly(lt) && stringly(rt));
                if !compatible {
                    return Err(CheckError::TypeMismatch {
                        cmp: cmp.to_string(),
                        left: lt,
                        right: rt,
                    });
                }
            }
        }
    }

    Ok(resolved)
}

/// Static errors detected by [`check_query`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// A path starts at a root that no catalog schema declares.
    UnknownRoot(String),
    /// A variable is used before (or without) being defined.
    UndefinedVariable(String),
    /// Two bindings declare the same variable.
    DuplicateVariable(String),
    /// A variable is bound inconsistently (e.g. both to a set and by a
    /// mapping predicate's database slot).
    ConflictingVariable(String),
    /// A projection step on a non-record element.
    ProjectOnNonRecord {
        /// The full path expression.
        path: String,
        /// The offending label.
        label: String,
    },
    /// A choice step on a non-choice element.
    ChoiceOnNonChoice {
        /// The full path expression.
        path: String,
        /// The offending label.
        label: String,
    },
    /// A projection/choice label that the element does not declare.
    UnknownAttribute {
        /// The full path expression.
        path: String,
        /// The offending label.
        label: String,
    },
    /// A navigation step applied to a meta-typed variable.
    StepOnMeta(String),
    /// A binding source that is not a set, choice, `@map` or function call.
    InvalidBindingSource {
        /// The bound variable.
        var: String,
        /// What the source resolved to.
        found: String,
    },
    /// A select item of complex type.
    NonAtomicSelect {
        /// The offending expression.
        expr: String,
        /// Its element kind.
        kind: String,
    },
    /// A comparison over complex values.
    NonAtomicComparison(String),
    /// A comparison between incompatible atomic types.
    TypeMismatch {
        /// The comparison.
        cmp: String,
        /// Left type.
        left: AtomicType,
        /// Right type.
        right: AtomicType,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::UnknownRoot(r) => write!(f, "unknown schema root `{r}`"),
            CheckError::UndefinedVariable(v) => write!(f, "undefined variable `{v}`"),
            CheckError::DuplicateVariable(v) => write!(f, "duplicate variable `{v}`"),
            CheckError::ConflictingVariable(v) => {
                write!(f, "variable `{v}` bound inconsistently")
            }
            CheckError::ProjectOnNonRecord { path, label } => {
                write!(f, "projection `.{label}` on non-record in `{path}`")
            }
            CheckError::ChoiceOnNonChoice { path, label } => {
                write!(f, "choice `->{label}` on non-choice in `{path}`")
            }
            CheckError::UnknownAttribute { path, label } => {
                write!(f, "unknown attribute `{label}` in `{path}`")
            }
            CheckError::StepOnMeta(v) => {
                write!(f, "navigation step on meta-typed variable `{v}`")
            }
            CheckError::InvalidBindingSource { var, found } => {
                write!(f, "binding source of `{var}` is not iterable: {found}")
            }
            CheckError::NonAtomicSelect { expr, kind } => {
                write!(f, "select item `{expr}` has complex type {kind}")
            }
            CheckError::NonAtomicComparison(c) => {
                write!(f, "comparison over complex values: {c}")
            }
            CheckError::TypeMismatch { cmp, left, right } => {
                write!(f, "type mismatch in `{cmp}`: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for CheckError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use dtr_model::types::Type;

    fn us_schema() -> Schema {
        Schema::build(
            "USdb",
            vec![(
                "US",
                Type::record(vec![
                    (
                        "houses",
                        Type::relation(vec![
                            ("hid", AtomicType::String),
                            ("floors", AtomicType::String),
                            ("price", AtomicType::Integer),
                            ("pool", AtomicType::String),
                            ("aid", AtomicType::String),
                        ]),
                    ),
                    (
                        "agents",
                        Type::set(Type::record(vec![
                            ("aid", Type::string()),
                            (
                                "title",
                                Type::choice(vec![
                                    ("name", Type::string()),
                                    ("firm", Type::string()),
                                ]),
                            ),
                            ("phone", Type::string()),
                        ])),
                    ),
                ]),
            )],
        )
        .unwrap()
    }

    fn check(text: &str) -> Result<(), CheckError> {
        let schema = us_schema();
        let q = parse_query(text).unwrap();
        check_query(&q, SchemaCatalog::new(vec![&schema])).map(|_| ())
    }

    #[test]
    fn valid_query_checks() {
        check(
            "select h.hid, n, a.phone
             from US.houses h, US.agents a, a.title->name n
             where h.aid = a.aid",
        )
        .unwrap();
    }

    #[test]
    fn unknown_root_rejected() {
        assert_eq!(
            check("select x.hid from Nope.houses x"),
            Err(CheckError::UnknownRoot("Nope".into()))
        );
    }

    #[test]
    fn unknown_attribute_rejected() {
        assert!(matches!(
            check("select h.bogus from US.houses h"),
            Err(CheckError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn binding_over_atomic_rejected() {
        assert!(matches!(
            check("select x from US.houses h, h.hid x"),
            Err(CheckError::InvalidBindingSource { .. })
        ));
    }

    #[test]
    fn select_of_complex_rejected() {
        assert!(matches!(
            check("select h from US.houses h"),
            Err(CheckError::NonAtomicSelect { .. })
        ));
    }

    #[test]
    fn comparison_type_mismatch_rejected() {
        assert!(matches!(
            check("select h.hid from US.houses h where h.price = h.hid"),
            Err(CheckError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn numeric_comparison_allowed() {
        check("select h.hid from US.houses h where h.price >= 500000").unwrap();
        check("select h.hid from US.houses h where h.price >= 3.5").unwrap();
    }

    #[test]
    fn choice_binding_targets_alternative() {
        let schema = us_schema();
        let q = parse_query("select n from US.agents a, a.title->firm n").unwrap();
        let r = check_query(&q, SchemaCatalog::new(vec![&schema])).unwrap();
        match r.vars.get("n") {
            Some(VarTarget::Element(0, e)) => {
                assert_eq!(schema.element(*e).label, "firm");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn map_operator_gives_mapping_var() {
        let schema = us_schema();
        let q = parse_query("select m from US.houses h, h.price@map m").unwrap();
        let r = check_query(&q, SchemaCatalog::new(vec![&schema])).unwrap();
        assert_eq!(r.vars.get("m"), Some(&VarTarget::Mapping));
    }

    #[test]
    fn predicate_vars_registered() {
        let schema = us_schema();
        let q = parse_query("select e from where <db:e -> m -> 'Pdb':'/Portal/estates/stories'>")
            .unwrap();
        let r = check_query(&q, SchemaCatalog::new(vec![&schema])).unwrap();
        assert_eq!(r.vars.get("e"), Some(&VarTarget::SchemaElement));
        assert_eq!(r.vars.get("db"), Some(&VarTarget::Database));
        assert_eq!(r.vars.get("m"), Some(&VarTarget::Mapping));
    }

    #[test]
    fn choice_step_on_record_rejected() {
        assert!(matches!(
            check("select n from US.houses h, h.hid->name n"),
            Err(CheckError::ChoiceOnNonChoice { .. })
        ));
    }

    #[test]
    fn undefined_variable_rejected() {
        assert!(matches!(
            check("select z.hid from US.houses h"),
            // `z` was resolved to a root (it is not a declared variable),
            // so the error surfaces as an unknown root.
            Err(CheckError::UnknownRoot(_))
        ));
    }

    #[test]
    fn expr_element_resolution() {
        let schema = us_schema();
        let q = parse_query("select h.price from US.houses h, US.agents a where h.aid = a.aid")
            .unwrap();
        let r = check_query(&q, SchemaCatalog::new(vec![&schema])).unwrap();
        let (s, e) = r.expr_element(&q.select[0]).unwrap();
        assert_eq!(s, 0);
        assert_eq!(schema.path(e), "/US/houses/price");
    }

    #[test]
    fn duplicate_binding_rejected() {
        assert!(matches!(
            check("select h.hid from US.houses h, US.agents h"),
            Err(CheckError::ConflictingVariable(_)) | Err(CheckError::DuplicateVariable(_))
        ));
    }
}
