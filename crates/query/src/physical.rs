//! Physical query plans: cost-based join ordering and algorithm choice.
//!
//! The physical planner takes a rewritten [`LogicalPlan`] and a
//! [`StatsCatalog`] snapshot (the cardinality/selectivity machinery
//! dtr-stats collects during exchange and previous query runs) and
//! produces a [`PhysicalPlan`]:
//!
//! * **join reordering** — row-independent bindings are greedily
//!   reordered by estimated cardinality (smallest first, respecting
//!   variable dependencies), Selinger-style, so cheap filters and
//!   selective joins run before expensive scans. Reordering is skipped
//!   when the query has a `limit` without a total order: which rows
//!   survive truncation would then depend on enumeration order.
//! * **per-join algorithm choice** — each explicit join node is assigned
//!   hash or nested-loop from estimated build/probe sizes: a hash table
//!   over two candidate items costs more to build than it saves.
//! * **estimated rows per stage** — propagated through the stage chain
//!   from set-cardinality histograms, pushed-filter selectivities and
//!   recorded join selectivities; `.explain` shows them next to actual
//!   rows so estimation error is visible.
//!
//! Estimates are advisory: when the catalog has never seen a path the
//! estimate is `None`, the sort key saturates, and the plan degrades to
//! the original binding order — exactly the legacy behavior.

use dtr_obs::stats::StatsCatalog;

use crate::ast::{Condition, Query};
use crate::eval::{canonical_expr, canonical_join_key};
use crate::logical::{BindKind, LogicalPlan, LogicalStage};

/// Join algorithm chosen for an explicit join node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinAlgo {
    /// Build a hash table over the candidate items, probe per row.
    Hash,
    /// Scan the candidate items per row.
    NestedLoop,
}

/// One stage of a physical plan, mirroring the logical stage chain.
#[derive(Clone, Debug)]
pub struct PhysStage {
    /// Operator name (`scan`, `bind`, `hash-join`, `nested-join`,
    /// `map-pred`, `filter`, `project`, `sort`, `limit`).
    pub op: &'static str,
    /// Human-readable detail (source and variable, filter text, ...).
    pub label: String,
    /// Estimated rows flowing *out* of this stage; `None` when the
    /// statistics catalog has no basis for an estimate.
    pub est_rows: Option<u64>,
    /// Algorithm, for join stages.
    pub algo: Option<JoinAlgo>,
    /// Index of the `from` binding this stage executes, for bind stages.
    pub binding: Option<usize>,
}

/// A physical plan: the executed binding order plus the annotated stages.
#[derive(Clone, Debug)]
pub struct PhysicalPlan {
    /// Permutation of the original `from` indices, in execution order.
    pub order: Vec<usize>,
    /// Annotated stages in execution order.
    pub stages: Vec<PhysStage>,
    /// True if `order` differs from the original binding order.
    pub reordered: bool,
}

/// Default selectivity assumed for a pushed or residual comparison with
/// no recorded statistics.
const FILTER_SELECTIVITY: f64 = 0.5;
/// Below this estimated build-side size a hash table costs more than it
/// saves and the planner picks nested-loop.
const HASH_BUILD_FLOOR: f64 = 3.0;

/// Estimated item count of a binding source, from the set-cardinality
/// histogram of its canonicalized path.
fn source_estimate(q: &Query, binding: usize, stats: &StatsCatalog) -> Option<f64> {
    let path = canonical_expr(&q.from[binding].source, q);
    stats
        .paths
        .get(&path)
        .and_then(|p| p.mean_set_cardinality())
}

/// Recorded selectivity of the equality comparison `ci`, if any.
fn join_selectivity(q: &Query, ci: usize, stats: &StatsCatalog) -> Option<f64> {
    let cmp = q
        .conditions
        .iter()
        .filter_map(|c| match c {
            Condition::Cmp(cmp) => Some(cmp),
            _ => None,
        })
        .nth(ci)?;
    stats
        .joins
        .get(&canonical_join_key(cmp, q))
        .and_then(|j| j.selectivity())
}

/// Chooses the binding execution order: greedy smallest-estimate-first
/// over the bindings whose source variables are already bound. With no
/// statistics every estimate saturates and the tiebreak (original index)
/// reproduces the original order. Queries with a `limit` are never
/// reordered — truncation without a total order makes the surviving rows
/// order-dependent.
pub fn choose_order(q: &Query, stats: &StatsCatalog) -> Vec<usize> {
    let n = q.from.len();
    let identity: Vec<usize> = (0..n).collect();
    if n < 2 || q.limit.is_some() {
        return identity;
    }
    let est: Vec<u64> = identity
        .iter()
        .map(|&bi| {
            source_estimate(q, bi, stats)
                .map(|e| e.round() as u64)
                .unwrap_or(u64::MAX)
        })
        .collect();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let mut bound: Vec<&str> = Vec::new();
    while order.len() < n {
        let next = (0..n)
            .filter(|&bi| {
                !placed[bi]
                    && q.from[bi]
                        .source
                        .variables()
                        .iter()
                        .all(|v| bound.contains(v))
            })
            .min_by_key(|&bi| (est[bi], bi))
            .expect("from clause is in dependency order, so some binding is ready");
        placed[next] = true;
        bound.push(q.from[next].var.as_str());
        order.push(next);
    }
    order
}

/// Reorders a query's `from` clause to `order` (a permutation of binding
/// indices). Conditions, select, sort and limit are untouched: bindings
/// are a filtered cross product, so permutation preserves the result
/// *multiset* (row order may differ — `law_plan` compares canonically).
pub fn apply_order(q: &Query, order: &[usize]) -> Query {
    let mut out = q.clone();
    out.from = order.iter().map(|&bi| q.from[bi].clone()).collect();
    out
}

impl PhysicalPlan {
    /// Annotates the (already reordered) query's logical plan with cost
    /// estimates and per-join algorithms. `order` maps execution position
    /// back to original binding indices, for display.
    pub fn from_logical(
        q: &Query,
        logical: &LogicalPlan,
        stats: &StatsCatalog,
        order: Vec<usize>,
    ) -> Self {
        let reordered = order.iter().enumerate().any(|(i, &bi)| i != bi);
        let mut stages = Vec::with_capacity(logical.stages.len());
        // Running row estimate through the chain; `None` once unknown.
        let mut rows: Option<f64> = Some(1.0);
        for stage in &logical.stages {
            match stage {
                LogicalStage::Bind(b) => {
                    let items = source_estimate(q, b.binding, stats);
                    let plain_filters = b
                        .pushed
                        .iter()
                        .filter(|&&ci| b.join_key != Some(ci))
                        .count();
                    let mut out = match (rows, items) {
                        (Some(r), Some(i)) => Some(r * i),
                        _ => None,
                    };
                    if let Some(k) = b.join_key {
                        let sel = join_selectivity(q, k, stats).unwrap_or(FILTER_SELECTIVITY);
                        out = out.map(|o| o * sel);
                    }
                    out = out.map(|o| o * FILTER_SELECTIVITY.powi(plain_filters as i32));
                    let (op, algo) = match (b.kind, b.join_key) {
                        (_, Some(_)) => {
                            // Hash pays off once the build side has a few
                            // items and more than one probe row arrives.
                            let nested = items.is_some_and(|i| i < HASH_BUILD_FLOOR)
                                || rows.is_some_and(|r| r <= 1.0);
                            if nested {
                                ("nested-join", Some(JoinAlgo::NestedLoop))
                            } else {
                                ("hash-join", Some(JoinAlgo::Hash))
                            }
                        }
                        (BindKind::Scan, None) => ("scan", None),
                        (BindKind::Bind, None) => ("bind", None),
                    };
                    rows = out;
                    stages.push(PhysStage {
                        op,
                        label: format!("{} {}", b.source, b.var),
                        est_rows: est_u64(rows),
                        algo,
                        binding: Some(b.binding),
                    });
                }
                LogicalStage::MapPred { pred } => {
                    // Triple unification can both filter and multiply
                    // rows; no statistics are collected for it yet.
                    rows = None;
                    stages.push(PhysStage {
                        op: "map-pred",
                        label: pred.clone(),
                        est_rows: None,
                        algo: None,
                        binding: None,
                    });
                }
                LogicalStage::Filter { residual } => {
                    if residual.is_empty() {
                        continue;
                    }
                    rows = rows.map(|r| r * FILTER_SELECTIVITY.powi(residual.len() as i32));
                    let texts: Vec<&str> = residual
                        .iter()
                        .map(|&ci| logical.comparisons[ci].as_str())
                        .collect();
                    stages.push(PhysStage {
                        op: "filter",
                        label: texts.join(" and "),
                        est_rows: est_u64(rows),
                        algo: None,
                        binding: None,
                    });
                }
                LogicalStage::Project { columns } => {
                    stages.push(PhysStage {
                        op: "project",
                        label: format!("{columns} col(s)"),
                        est_rows: est_u64(rows),
                        algo: None,
                        binding: None,
                    });
                }
                LogicalStage::Sort { keys } => {
                    stages.push(PhysStage {
                        op: "sort",
                        label: format!("{keys} key(s)"),
                        est_rows: est_u64(rows),
                        algo: None,
                        binding: None,
                    });
                }
                LogicalStage::Limit { n } => {
                    rows = rows.map(|r| r.min(*n as f64));
                    stages.push(PhysStage {
                        op: "limit",
                        label: n.to_string(),
                        est_rows: est_u64(rows),
                        algo: None,
                        binding: None,
                    });
                }
            }
        }
        PhysicalPlan {
            order,
            stages,
            reordered,
        }
    }

    /// Per-original-binding hash-join permission derived from the
    /// per-join algorithm choices: `false` exactly where the planner
    /// picked nested-loop. Bindings without an explicit join node stay
    /// `true` (the evaluator's own detection remains the arbiter there).
    pub fn hash_join_overrides(&self, n_bindings: usize) -> Vec<bool> {
        let mut allow = vec![true; n_bindings];
        for s in &self.stages {
            if let (Some(JoinAlgo::NestedLoop), Some(bi)) = (s.algo, s.binding) {
                allow[bi] = false;
            }
        }
        allow
    }

    /// One line per stage, top (last stage) first — the `.explain` shape.
    /// `actual` supplies measured per-stage output rows (indexed like
    /// `stages`) when the plan has been executed with analysis on.
    pub fn render(&self, actual: Option<&[Option<u64>]>) -> String {
        let mut out = String::from("PHYSICAL PLAN");
        if self.reordered {
            out.push_str("  (bindings reordered by estimated cardinality)");
        }
        out.push('\n');
        for (i, s) in self.stages.iter().enumerate().rev() {
            let est = s.est_rows.map_or("?".to_string(), |r| r.to_string());
            let act = actual
                .and_then(|a| a.get(i).copied().flatten())
                .map_or("-".to_string(), |r| r.to_string());
            out.push_str(&format!(
                "  {:<12} {:<44} est={est:<8} actual={act}\n",
                s.op, s.label
            ));
        }
        out
    }
}

fn est_u64(rows: Option<f64>) -> Option<u64> {
    rows.map(|r| r.round().max(0.0) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use dtr_obs::stats::JoinStats;

    fn two_scan_query() -> Query {
        parse_query("select h.hid from US.houses h, US.agents a where a.aid = h.aid").unwrap()
    }

    #[test]
    fn no_stats_means_original_order() {
        let q = two_scan_query();
        let stats = StatsCatalog::new();
        assert_eq!(choose_order(&q, &stats), vec![0, 1]);
        let logical = LogicalPlan::optimized(&q);
        let phys = PhysicalPlan::from_logical(&q, &logical, &stats, vec![0, 1]);
        assert!(!phys.reordered);
        // Unknown cardinalities render as `?`.
        assert!(phys.render(None).contains("est=?"), "{}", phys.render(None));
    }

    #[test]
    fn smaller_estimated_binding_runs_first() {
        let q = two_scan_query();
        let mut stats = StatsCatalog::new();
        stats.record_set("US.houses", 1000);
        stats.record_set("US.agents", 4);
        assert_eq!(choose_order(&q, &stats), vec![1, 0]);
        let q2 = apply_order(&q, &[1, 0]);
        assert_eq!(q2.from[0].var, "a");
        let logical = LogicalPlan::optimized(&q2);
        let phys = PhysicalPlan::from_logical(&q2, &logical, &stats, vec![1, 0]);
        assert!(phys.reordered);
    }

    #[test]
    fn limit_blocks_reordering() {
        let q =
            parse_query("select h.hid from US.houses h, US.agents a where a.aid = h.aid limit 3")
                .unwrap();
        let mut stats = StatsCatalog::new();
        stats.record_set("US.houses", 1000);
        stats.record_set("US.agents", 4);
        assert_eq!(choose_order(&q, &stats), vec![0, 1]);
    }

    #[test]
    fn dependent_binding_waits_for_its_variable() {
        let q = parse_query(
            "select r.street from US.houses h, h.rooms r, US.agents a where a.aid = h.aid",
        )
        .unwrap();
        let mut stats = StatsCatalog::new();
        stats.record_set("US.houses", 100);
        stats.record_set("US.agents", 2);
        // agents (2) first, but `h.rooms r` can never precede `h`.
        let order = choose_order(&q, &stats);
        let pos = |bi: usize| order.iter().position(|&o| o == bi).unwrap();
        assert!(pos(0) < pos(1), "h before h.rooms in {order:?}");
        assert_eq!(order[0], 2, "agents first in {order:?}");
    }

    #[test]
    fn tiny_build_side_picks_nested_loop() {
        let q = two_scan_query();
        let mut stats = StatsCatalog::new();
        stats.record_set("US.houses", 500);
        stats.record_set("US.agents", 2);
        stats.record_join(
            "US.agents.aid = US.houses.aid",
            JoinStats {
                build_rows: 2,
                probe_rows: 500,
                probes: 500,
                matches: 400,
            },
        );
        let logical = LogicalPlan::optimized(&q);
        let phys = PhysicalPlan::from_logical(&q, &logical, &stats, vec![0, 1]);
        let join = phys.stages.iter().find(|s| s.algo.is_some()).unwrap();
        assert_eq!(join.algo, Some(JoinAlgo::NestedLoop));
        let allow = phys.hash_join_overrides(q.from.len());
        assert!(allow.iter().any(|&b| !b));
    }

    #[test]
    fn large_build_side_keeps_hash_join() {
        let q = two_scan_query();
        let mut stats = StatsCatalog::new();
        stats.record_set("US.houses", 500);
        stats.record_set("US.agents", 300);
        let logical = LogicalPlan::optimized(&q);
        let phys = PhysicalPlan::from_logical(&q, &logical, &stats, vec![0, 1]);
        let join = phys.stages.iter().find(|s| s.algo.is_some()).unwrap();
        assert_eq!(join.algo, Some(JoinAlgo::Hash));
        assert_eq!(phys.hash_join_overrides(2), vec![true, true]);
    }
}
