//! Text syntax for queries, MXQL and mappings.
//!
//! The concrete syntax follows the paper's examples:
//!
//! ```text
//! select s.hid, m
//! from Portal.estates s, Portal.contacts c, c.title@map m
//! where s.contact = c.title and e = c.title@elem
//!   and <'USdb':'US/agents/title/firm' -> m -> 'Pdb':e>
//! ```
//!
//! The union-choice arrow `→` is written `->` (as in `a.title->name`), the
//! double arrow `⇒` of the what-provenance predicate is written `=>`, and
//! both Unicode arrows are accepted as well. Mappings are written
//! `foreach <query> exists <query>` (Section 4.3); see
//! [`parse_mapping_parts`].

use crate::ast::*;
use dtr_model::value::AtomicValue;
use std::fmt;

/// A parse error with position information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    Float(f64),
    Dot,
    Comma,
    Colon,
    LParen,
    RParen,
    At,
    Arrow,       // ->
    DoubleArrow, // =>
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
}

#[derive(Clone, Debug)]
struct Spanned {
    tok: Tok,
    offset: usize,
}

fn lex(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        // Decode a full char so that the Unicode arrows lex correctly.
        // invariant: `i < bytes.len()` (loop condition) and `i` only ever
        // advances by whole-char widths, so the slice is non-empty and
        // starts on a char boundary — `next()` cannot return `None`.
        let c = input[i..].chars().next().expect("in-bounds index");
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '.' => {
                toks.push(Spanned {
                    tok: Tok::Dot,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                toks.push(Spanned {
                    tok: Tok::Comma,
                    offset: start,
                });
                i += 1;
            }
            ':' => {
                toks.push(Spanned {
                    tok: Tok::Colon,
                    offset: start,
                });
                i += 1;
            }
            '(' => {
                toks.push(Spanned {
                    tok: Tok::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                toks.push(Spanned {
                    tok: Tok::RParen,
                    offset: start,
                });
                i += 1;
            }
            '@' => {
                toks.push(Spanned {
                    tok: Tok::At,
                    offset: start,
                });
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    toks.push(Spanned {
                        tok: Tok::Arrow,
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1).map(|b| b.is_ascii_digit()) == Some(true) {
                    let (tok, next) = lex_number(input, i)?;
                    toks.push(Spanned { tok, offset: start });
                    i = next;
                } else {
                    return Err(ParseError {
                        offset: start,
                        message: "unexpected `-`".into(),
                    });
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    toks.push(Spanned {
                        tok: Tok::DoubleArrow,
                        offset: start,
                    });
                    i += 2;
                } else {
                    toks.push(Spanned {
                        tok: Tok::Eq,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Spanned {
                        tok: Tok::Le,
                        offset: start,
                    });
                    i += 2;
                } else {
                    toks.push(Spanned {
                        tok: Tok::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Spanned {
                        tok: Tok::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    toks.push(Spanned {
                        tok: Tok::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Spanned {
                        tok: Tok::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(ParseError {
                        offset: start,
                        message: "unexpected `!`".into(),
                    });
                }
            }
            '\'' => {
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ParseError {
                        offset: start,
                        message: "unterminated string literal".into(),
                    });
                }
                toks.push(Spanned {
                    tok: Tok::Str(input[i + 1..j].to_owned()),
                    offset: start,
                });
                i = j + 1;
            }
            _ if c.is_ascii_digit() => {
                let (tok, next) = lex_number(input, i)?;
                toks.push(Spanned { tok, offset: start });
                i = next;
            }
            _ if c.is_ascii_alphabetic() || c == '_' || c == '/' => {
                // `/`-initial identifiers support bare element paths.
                let mut j = i + 1;
                while j < bytes.len() {
                    let b = bytes[j] as char;
                    if b.is_ascii_alphanumeric() || b == '_' || b == '/' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Spanned {
                    tok: Tok::Ident(input[i..j].to_owned()),
                    offset: start,
                });
                i = j;
            }
            '\u{2192}' => {
                // Unicode `→`
                toks.push(Spanned {
                    tok: Tok::Arrow,
                    offset: start,
                });
                i += '\u{2192}'.len_utf8();
            }
            '\u{21d2}' => {
                // Unicode `⇒`
                toks.push(Spanned {
                    tok: Tok::DoubleArrow,
                    offset: start,
                });
                i += '\u{21d2}'.len_utf8();
            }
            other => {
                return Err(ParseError {
                    offset: start,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    Ok(toks)
}

fn lex_number(input: &str, start: usize) -> Result<(Tok, usize), ParseError> {
    let bytes = input.as_bytes();
    let mut j = start;
    if bytes[j] == b'-' {
        j += 1;
    }
    while j < bytes.len() && bytes[j].is_ascii_digit() {
        j += 1;
    }
    let mut is_float = false;
    if j < bytes.len()
        && bytes[j] == b'.'
        && bytes.get(j + 1).map(|b| b.is_ascii_digit()) == Some(true)
    {
        is_float = true;
        j += 1;
        while j < bytes.len() && bytes[j].is_ascii_digit() {
            j += 1;
        }
    }
    let text = &input[start..j];
    let tok = if is_float {
        Tok::Float(text.parse().map_err(|_| ParseError {
            offset: start,
            message: format!("invalid float literal `{text}`"),
        })?)
    } else {
        Tok::Int(text.parse().map_err(|_| ParseError {
            offset: start,
            message: format!("invalid integer literal `{text}`"),
        })?)
    };
    Ok((tok, j))
}

/// Maximum expression nesting the recursive-descent parser accepts. Each
/// nesting level (a function-call argument containing another call) is one
/// stack frame, so a hostile `f(f(f(…)))` input would otherwise overflow
/// the stack instead of returning a [`ParseError`].
const MAX_EXPR_DEPTH: usize = 128;

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    input_len: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|s| &s.tok)
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|s| s.offset)
            .unwrap_or(self.input_len)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t == tok => Ok(()),
            Some(t) => Err(ParseError {
                offset: self.toks[self.pos - 1].offset,
                message: format!("expected {what}, found {t:?}"),
            }),
            None => Err(ParseError {
                offset: self.input_len,
                message: format!("expected {what}, found end of input"),
            }),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Ident(id)) if id.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(self.error(format!("expected keyword `{kw}`, found {other:?}"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(id)) if id.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(id)) => Ok(id),
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    /// query := 'select' exprs 'from' bindings? ('where' conds)?
    fn query(&mut self) -> Result<Query, ParseError> {
        self.keyword("select")?;
        let mut select = Vec::new();
        loop {
            select.push(self.expr()?);
            if self.peek() == Some(&Tok::Comma) {
                self.next();
            } else {
                break;
            }
        }
        self.keyword("from")?;
        let mut from = Vec::new();
        // Example 5.6 has an empty from clause: `from where <...>`.
        if !self.at_keyword("where") && self.peek().is_some() && !self.at_terminator() {
            loop {
                let source = self.expr()?;
                let var = self.ident("binding variable")?;
                from.push(Binding { var, source });
                if self.peek() == Some(&Tok::Comma) {
                    self.next();
                } else {
                    break;
                }
            }
        }
        let mut conditions = Vec::new();
        if self.at_keyword("where") {
            self.next();
            loop {
                conditions.push(self.condition()?);
                if self.at_keyword("and") {
                    self.next();
                } else {
                    break;
                }
            }
        }
        // Extension tail: `order by expr [desc] (, expr [desc])*` and
        // `limit N`.
        let mut order_by = Vec::new();
        if self.at_keyword("order") {
            self.next();
            self.keyword("by")?;
            loop {
                let expr = self.expr()?;
                let descending = if self.at_keyword("desc") {
                    self.next();
                    true
                } else {
                    if self.at_keyword("asc") {
                        self.next();
                    }
                    false
                };
                order_by.push(OrderKey { expr, descending });
                if self.peek() == Some(&Tok::Comma) {
                    self.next();
                } else {
                    break;
                }
            }
        }
        let mut limit = None;
        if self.at_keyword("limit") {
            self.next();
            match self.next() {
                Some(Tok::Int(n)) if n >= 0 => limit = Some(n as usize),
                other => return Err(self.error(format!("expected a limit count, found {other:?}"))),
            }
        }
        Ok(Query {
            select,
            from,
            conditions,
            order_by,
            limit,
        })
    }

    /// True when at a token that ends a query in a larger construct
    /// (`exists` inside a mapping).
    fn at_terminator(&self) -> bool {
        self.at_keyword("exists")
    }

    /// expr := primary step* ('@' ('map'|'elem'))?
    ///
    /// Recursion is bounded: deeper than [`MAX_EXPR_DEPTH`] nested calls is
    /// a parse error, never a stack overflow.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            self.depth -= 1;
            return Err(self.error(format!(
                "expression nesting exceeds {MAX_EXPR_DEPTH} levels"
            )));
        }
        let result = self.expr_unbounded();
        self.depth -= 1;
        result
    }

    fn expr_unbounded(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Str(s)) => {
                self.next();
                Ok(Expr::Const(AtomicValue::Str(s)))
            }
            Some(Tok::Int(i)) => {
                self.next();
                Ok(Expr::Const(AtomicValue::Int(i)))
            }
            Some(Tok::Float(x)) => {
                self.next();
                Ok(Expr::Const(AtomicValue::Float(x)))
            }
            Some(Tok::Ident(id)) => {
                // Function call?
                if self.peek2() == Some(&Tok::LParen) {
                    self.next();
                    self.next();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.peek() == Some(&Tok::Comma) {
                                self.next();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen, "`)`")?;
                    return Ok(Expr::Call(id, args));
                }
                self.next();
                let mut path = PathExpr {
                    start: PathStart::Var(id),
                    steps: Vec::new(),
                };
                loop {
                    match self.peek() {
                        Some(Tok::Dot) => {
                            self.next();
                            let l = self.ident("projection label")?;
                            path.steps.push(Step::Project(l.into()));
                        }
                        Some(Tok::Arrow) => {
                            self.next();
                            let l = self.ident("choice label")?;
                            path.steps.push(Step::Choice(l.into()));
                        }
                        Some(Tok::At) => {
                            self.next();
                            let op = self.ident("`map` or `elem`")?;
                            return match op.as_str() {
                                "map" => Ok(Expr::MapOf(path)),
                                "elem" => Ok(Expr::ElemOf(path)),
                                other => {
                                    Err(self
                                        .error(format!("unknown annotation operator `@{other}`")))
                                }
                            };
                        }
                        _ => break,
                    }
                }
                Ok(Expr::Path(path))
            }
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }

    /// cond := mapping_pred | expr op expr
    fn condition(&mut self) -> Result<Condition, ParseError> {
        if self.peek() == Some(&Tok::Lt) {
            // Try a mapping predicate with backtracking.
            let save = self.pos;
            match self.mapping_pred() {
                Ok(p) => return Ok(Condition::MapPred(p)),
                Err(_) => self.pos = save,
            }
        }
        let left = self.expr()?;
        let op = match self.next() {
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            other => {
                return Err(self.error(format!("expected comparison operator, found {other:?}")))
            }
        };
        let right = self.expr()?;
        Ok(Condition::Cmp(Comparison { left, op, right }))
    }

    /// mapping_pred := '<' term ':' term arr term arr term ':' term '>'
    fn mapping_pred(&mut self) -> Result<MappingPred, ParseError> {
        self.expect(Tok::Lt, "`<`")?;
        let src_db = self.term()?;
        self.expect(Tok::Colon, "`:`")?;
        let src_elem = self.term()?;
        let double = match self.next() {
            Some(Tok::Arrow) => false,
            Some(Tok::DoubleArrow) => true,
            other => return Err(self.error(format!("expected `->` or `=>`, found {other:?}"))),
        };
        let mapping = self.term()?;
        match (self.next(), double) {
            (Some(Tok::Arrow), false) | (Some(Tok::DoubleArrow), true) => {}
            (other, _) => {
                return Err(self.error(format!("mismatched predicate arrow, found {other:?}")))
            }
        }
        let tgt_db = self.term()?;
        self.expect(Tok::Colon, "`:`")?;
        let tgt_elem = self.term()?;
        self.expect(Tok::Gt, "`>`")?;
        Ok(MappingPred {
            src_db,
            src_elem,
            mapping,
            tgt_db,
            tgt_elem,
            double,
        })
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.next() {
            Some(Tok::Ident(id)) => Ok(Term::Var(id)),
            Some(Tok::Str(s)) => Ok(Term::Const(AtomicValue::Str(s))),
            other => Err(self.error(format!("expected variable or constant, found {other:?}"))),
        }
    }
}

/// Distinguishes schema-root starts from variable starts.
///
/// The lexer cannot tell `Portal` (a schema root) from `c` (a variable);
/// both are identifiers. After parsing, an identifier start is a variable
/// iff it is declared by an *earlier* `from` binding (Section 4.2 requires
/// `P_i` to use only variables `x_j` with `j < i`) or it occurs as a term of
/// a mapping predicate (such variables are "implicitly defined through their
/// position in the mapping predicate", Section 5). Everything else is a
/// schema root.
fn resolve_starts(q: &mut Query) {
    let mut pred_vars: Vec<String> = Vec::new();
    for c in &q.conditions {
        if let Condition::MapPred(p) = c {
            for v in p.variables() {
                if !pred_vars.iter().any(|x| x == v) {
                    pred_vars.push(v.to_owned());
                }
            }
        }
    }
    let binding_vars: Vec<String> = q.from.iter().map(|b| b.var.clone()).collect();
    for i in 0..q.from.len() {
        let known: Vec<&str> = binding_vars[..i]
            .iter()
            .map(|s| s.as_str())
            .chain(pred_vars.iter().map(|s| s.as_str()))
            .collect();
        fix_expr(&mut q.from[i].source, &known);
    }
    let all: Vec<&str> = binding_vars
        .iter()
        .map(|s| s.as_str())
        .chain(pred_vars.iter().map(|s| s.as_str()))
        .collect();
    for e in &mut q.select {
        fix_expr(e, &all);
    }
    for c in &mut q.conditions {
        if let Condition::Cmp(cmp) = c {
            fix_expr(&mut cmp.left, &all);
            fix_expr(&mut cmp.right, &all);
        }
    }
    for k in &mut q.order_by {
        fix_expr(&mut k.expr, &all);
    }
}

fn fix_expr(e: &mut Expr, known_vars: &[&str]) {
    match e {
        Expr::Path(p) | Expr::ElemOf(p) | Expr::MapOf(p) => {
            if let PathStart::Var(v) = &p.start {
                if !known_vars.contains(&v.as_str()) {
                    p.start = PathStart::Root(v.as_str().into());
                }
            }
        }
        Expr::Call(_, args) => {
            for a in args {
                fix_expr(a, known_vars);
            }
        }
        Expr::Const(_) => {}
    }
}

/// Parses a select-from-where query (plain or MXQL).
///
/// ```
/// use dtr_query::parser::parse_query;
///
/// let q = parse_query(
///     "select x.hid, m from Portal.estates x, x.value@map m",
/// )
/// .unwrap();
/// assert!(q.is_mxql());
/// assert_eq!(q.from.len(), 2);
/// ```
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let mut p = Parser {
        toks: lex(input)?,
        pos: 0,
        input_len: input.len(),
        depth: 0,
    };
    let mut q = p.query()?;
    if p.peek().is_some() {
        return Err(p.error("trailing input after query"));
    }
    resolve_starts(&mut q);
    Ok(q)
}

/// Parses the two queries of a GLAV mapping body
/// `foreach <query> exists <query>` (Section 4.3) and returns
/// `(foreach, exists)`. The mapping abstraction itself lives in the
/// `dtr-mapping` crate.
pub fn parse_mapping_parts(input: &str) -> Result<(Query, Query), ParseError> {
    let mut p = Parser {
        toks: lex(input)?,
        pos: 0,
        input_len: input.len(),
        depth: 0,
    };
    p.keyword("foreach")?;
    let mut foreach = p.query()?;
    p.keyword("exists")?;
    let mut exists = p.query()?;
    if p.peek().is_some() {
        return Err(p.error("trailing input after mapping"));
    }
    resolve_starts(&mut foreach);
    resolve_starts(&mut exists);
    Ok((foreach, exists))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_query() {
        let q =
            parse_query("select e.hid, e.value from Portal.estates e where e.value > 500").unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.from.len(), 1);
        assert_eq!(q.from[0].var, "e");
        assert_eq!(q.conditions.len(), 1);
        assert!(!q.is_mxql());
    }

    #[test]
    fn parse_mapping_m1_shape() {
        // Mapping m1 of Figure 1.
        let (f, e) = parse_mapping_parts(
            "foreach
               select h.hid, h.floors, h.price, n, a.phone
               from US.houses h, US.agents a, a.title->name n
               where h.aid = a.aid
             exists
               select e.hid, e.stories, e.value, c.title, c.phone
               from Portal.estates e, Portal.contacts c
               where e.contact = c.title",
        )
        .unwrap();
        assert_eq!(f.select.len(), 5);
        assert_eq!(f.from.len(), 3);
        assert_eq!(e.select.len(), 5);
        // The choice binding parsed as a Choice step.
        match &f.from[2].source {
            Expr::Path(p) => {
                assert_eq!(p.steps.last(), Some(&Step::Choice("name".into())));
            }
            other => panic!("unexpected binding source {other:?}"),
        }
    }

    #[test]
    fn parse_example_5_4() {
        // Example 5.4 (with the paper's `x.estate.hid` typo corrected).
        let q =
            parse_query("select x.hid, x.value, m from Portal.estates x, x.value@map m").unwrap();
        assert!(q.is_mxql());
        assert!(matches!(q.from[1].source, Expr::MapOf(_)));
    }

    #[test]
    fn parse_example_5_5() {
        let q = parse_query(
            "select s.hid, m
             from Portal.estates s, Portal.contacts c, c.title@map m
             where s.contact = c.title and e = c.title@elem
               and <'USdb':'US/agents/title/firm' -> m -> 'Pdb':e>",
        )
        .unwrap();
        assert_eq!(q.conditions.len(), 3);
        match &q.conditions[2] {
            Condition::MapPred(p) => {
                assert!(!p.double);
                assert_eq!(p.mapping, Term::Var("m".into()));
                assert_eq!(
                    p.src_elem,
                    Term::Const(AtomicValue::str("US/agents/title/firm"))
                );
            }
            other => panic!("expected mapping predicate, got {other:?}"),
        }
        // `e` and the predicate-only variables are implicit.
        assert!(q.implicit_vars().contains(&"e"));
    }

    #[test]
    fn parse_example_5_6_empty_from() {
        let q = parse_query(
            "select e from where <db:e -> m -> 'Pdb':'/Portal/estates/estate/stories'>",
        )
        .unwrap();
        assert!(q.from.is_empty());
        assert_eq!(q.conditions.len(), 1);
    }

    #[test]
    fn parse_double_arrow() {
        let q = parse_query(
            "select c.title, es
             from Portal.estates s, Portal.contacts c, c.title@map m
             where s.contact = c.title and e = c.title@elem
               and <'USdb':es => m => 'Pdb':e>",
        )
        .unwrap();
        match &q.conditions[2] {
            Condition::MapPred(p) => assert!(p.double),
            other => panic!("expected mapping predicate, got {other:?}"),
        }
    }

    #[test]
    fn unicode_arrows_accepted() {
        let q = parse_query("select n from a.title\u{2192}name n").unwrap();
        match &q.from[0].source {
            Expr::Path(p) => assert_eq!(p.steps.last(), Some(&Step::Choice("name".into()))),
            other => panic!("{other:?}"),
        }
        let q2 = parse_query("select e from where <db:e \u{21d2} m \u{21d2} 'Pdb':e2>").unwrap();
        match &q2.conditions[0] {
            Condition::MapPred(p) => assert!(p.double),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_function_calls() {
        let q = parse_query(
            "select getElAnnot(c.title) from Portal.contacts c, getMapAnnot(c.title) mv",
        )
        .unwrap();
        assert!(
            matches!(&q.select[0], Expr::Call(name, args) if name == "getElAnnot" && args.len() == 1)
        );
        assert!(matches!(&q.from[1].source, Expr::Call(name, _) if name == "getMapAnnot"));
    }

    #[test]
    fn comparison_operators() {
        for (text, op) in [
            ("=", CmpOp::Eq),
            ("!=", CmpOp::Ne),
            ("<", CmpOp::Lt),
            ("<=", CmpOp::Le),
            (">", CmpOp::Gt),
            (">=", CmpOp::Ge),
        ] {
            let q = parse_query(&format!(
                "select e.hid from Portal.estates e where e.value {text} 100"
            ))
            .unwrap();
            match &q.conditions[0] {
                Condition::Cmp(c) => assert_eq!(c.op, op),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn lt_condition_vs_mapping_pred_disambiguation() {
        // `e.value < 100` must not be swallowed by the predicate parser.
        let q = parse_query("select e.hid from Portal.estates e where e.value < 100").unwrap();
        assert!(matches!(&q.conditions[0], Condition::Cmp(c) if c.op == CmpOp::Lt));
    }

    #[test]
    fn numbers_and_strings() {
        let q = parse_query(
            "select e.hid from Portal.estates e where e.value >= 3.5 and e.hid = 'H522'",
        )
        .unwrap();
        match &q.conditions[0] {
            Condition::Cmp(c) => assert_eq!(c.right, Expr::Const(AtomicValue::Float(3.5))),
            other => panic!("{other:?}"),
        }
        match &q.conditions[1] {
            Condition::Cmp(c) => assert_eq!(c.right, Expr::Const(AtomicValue::str("H522"))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn negative_numbers() {
        let q = parse_query("select e.hid from Portal.estates e where e.value > -5").unwrap();
        match &q.conditions[0] {
            Condition::Cmp(c) => assert_eq!(c.right, Expr::Const(AtomicValue::Int(-5))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_reported_with_offsets() {
        // `from` is consumed as an identifier, so the error is a missing
        // `from` keyword afterwards.
        assert!(parse_query("select from x").is_err());
        // An empty from clause is legal (Example 5.6)...
        assert!(parse_query("select a.b from").is_ok());
        // ...but a binding without a variable is not.
        let err = parse_query("select a.b from X.y").unwrap_err();
        assert!(err.offset >= 12);
        assert!(parse_query("select 'unterminated from x").is_err());
        assert!(parse_query("select a.b from X.y x extra garbage ! here").is_err());
    }

    #[test]
    fn display_parse_round_trip() {
        let text = "select s.hid, m
from Portal.estates s, Portal.contacts c, c.title@map m
where s.contact = c.title and e = c.title@elem and <'USdb':'US/agents/title/firm' -> m -> 'Pdb':e>";
        let q = parse_query(text).unwrap();
        let q2 = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn root_vs_variable_resolution() {
        let q =
            parse_query("select s.hid from Portal.estates s, s.rooms r where r.size > 2").unwrap();
        // `Portal` is a root, `s` in the second binding is a variable.
        match &q.from[0].source {
            Expr::Path(p) => assert_eq!(p.start, PathStart::Root("Portal".into())),
            other => panic!("{other:?}"),
        }
        match &q.from[1].source {
            Expr::Path(p) => assert_eq!(p.start, PathStart::Var("s".into())),
            other => panic!("{other:?}"),
        }
        // Select and where expressions resolve against all bindings.
        match &q.select[0] {
            Expr::Path(p) => assert_eq!(p.start, PathStart::Var("s".into())),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn predicate_vars_stay_variables() {
        let q = parse_query("select e from where <db:e -> m -> 'Pdb':'/Portal/estates/stories'>")
            .unwrap();
        match &q.select[0] {
            Expr::Path(p) => assert_eq!(p.start, PathStart::Var("e".into())),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn order_by_and_limit_parse_and_round_trip() {
        let q = parse_query(
            "select e.hid, e.value from Portal.estates e \
             where e.value > 100 order by e.value desc, e.hid limit 5",
        )
        .unwrap();
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].descending);
        assert!(!q.order_by[1].descending);
        assert_eq!(q.limit, Some(5));
        let q2 = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, q2);
        // `asc` is accepted and means not-descending.
        let q3 = parse_query("select e.hid from Portal.estates e order by e.hid asc").unwrap();
        assert!(!q3.order_by[0].descending);
        // A bogus limit is rejected.
        assert!(parse_query("select e.hid from Portal.estates e limit x").is_err());
    }

    #[test]
    fn keywords_case_insensitive() {
        let q = parse_query("SELECT e.hid FROM Portal.estates e WHERE e.hid = 'x'").unwrap();
        assert_eq!(q.select.len(), 1);
    }

    #[test]
    fn deep_call_nesting_is_an_error_not_a_stack_overflow() {
        // 10k nested calls would overflow the stack without the depth
        // bound; with it, the parser returns a structured error.
        let depth = 10_000;
        let mut text = String::from("select ");
        text.push_str(&"f(".repeat(depth));
        text.push('x');
        text.push_str(&")".repeat(depth));
        text.push_str(" from Portal.estates x");
        let err = parse_query(&text).unwrap_err();
        assert!(
            err.message.contains("nesting exceeds"),
            "unexpected message: {}",
            err.message
        );
        // The bound leaves reasonable real nesting untouched.
        let mut ok = String::from("select ");
        ok.push_str(&"f(".repeat(16));
        ok.push('x');
        ok.push_str(&")".repeat(16));
        ok.push_str(" from Portal.estates x");
        assert!(parse_query(&ok).is_ok());
    }
}
