//! Function calls (Section 4.2) and the annotation-access functions of the
//! MXQL implementation (Section 7.2).
//!
//! "A function call accepts as arguments one or more values and returns a
//! single value or a set of values. Function calls returning a set can be
//! used in the from clause." The implementation chapter introduces two
//! functions over the tagged instance — `getElAnnot(v)` and
//! `getMapAnnot(v)` — that expose the element and mapping annotations; the
//! MXQL translator rewrites `@elem`/`@map` into calls to them.

use crate::eval::{Catalog, EvalError};
use dtr_model::instance::NodeId;
use dtr_model::value::{AtomicValue, ElementRef};
use std::collections::HashMap;
use std::sync::Arc;

/// An evaluated function argument: the atomic value (if the argument had a
/// valuation) and the instance node it came from (if it is a fact).
#[derive(Clone, Debug)]
pub struct ArgValue {
    /// The atomic value, or `None` when a choice step filtered the path out.
    pub value: Option<AtomicValue>,
    /// The instance position `(source index, node)` for path arguments.
    pub node: Option<(usize, NodeId)>,
}

/// What a function returns.
#[derive(Clone, Debug, PartialEq)]
pub enum FunctionValue {
    /// A single value.
    One(AtomicValue),
    /// A set of values (usable as a from-clause binding source).
    Many(Vec<AtomicValue>),
}

/// The type of native function implementations.
pub type NativeFn =
    dyn Fn(&[ArgValue], &Catalog<'_>) -> Result<FunctionValue, EvalError> + Send + Sync;

/// A registry of named functions available to queries.
#[derive(Clone, Default)]
pub struct FunctionRegistry {
    map: HashMap<String, Arc<NativeFn>>,
}

impl FunctionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry with the built-in functions:
    ///
    /// * `concat(a, b, ...)` — string concatenation, the paper's example of
    ///   combining several select expressions into one (Section 4.3);
    /// * `getElAnnot(v)` — the element annotation of a fact (Section 7.2);
    /// * `getMapAnnot(v)` — the mapping annotations of a fact (Section 7.2).
    pub fn with_builtins() -> Self {
        let mut reg = Self::new();
        reg.register("concat", |args, _| {
            let mut out = String::new();
            for a in args {
                match &a.value {
                    Some(v) => out.push_str(&v.to_string()),
                    None => return Err(EvalError::Function("concat of missing value".into())),
                }
            }
            Ok(FunctionValue::One(AtomicValue::Str(out)))
        });
        reg.register("getElAnnot", |args, cat| {
            let fact = fact_arg("getElAnnot", args)?;
            let (s, n) = fact;
            let source = cat.source(s);
            let elem =
                source.instance.annotation(n).element.ok_or_else(|| {
                    EvalError::MissingElementAnnotation("getElAnnot argument".into())
                })?;
            Ok(FunctionValue::One(AtomicValue::Elem(ElementRef::new(
                source.instance.db(),
                source.schema.path(elem),
            ))))
        });
        reg.register("getMapAnnot", |args, cat| {
            let (s, n) = fact_arg("getMapAnnot", args)?;
            let source = cat.source(s);
            Ok(FunctionValue::Many(
                source
                    .instance
                    .annotation(n)
                    .mappings
                    .iter()
                    .map(|m| AtomicValue::Map(m.clone()))
                    .collect(),
            ))
        });
        reg
    }

    /// Registers (or replaces) a function.
    pub fn register<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: Fn(&[ArgValue], &Catalog<'_>) -> Result<FunctionValue, EvalError>
            + Send
            + Sync
            + 'static,
    {
        self.map.insert(name.into(), Arc::new(f));
    }

    /// Looks a function up.
    pub fn get(&self, name: &str) -> Option<&Arc<NativeFn>> {
        self.map.get(name)
    }

    /// The registered function names.
    pub fn names(&self) -> Vec<&str> {
        self.map.keys().map(|s| s.as_str()).collect()
    }
}

/// Extracts the single fact argument of an annotation function.
fn fact_arg(name: &str, args: &[ArgValue]) -> Result<(usize, NodeId), EvalError> {
    if args.len() != 1 {
        return Err(EvalError::Function(format!(
            "{name} takes exactly one argument"
        )));
    }
    args[0].node.ok_or_else(|| {
        EvalError::Function(format!(
            "{name} requires a path argument (a value of the instance)"
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{Evaluator, Source};
    use crate::parser::parse_query;
    use dtr_model::instance::{Instance, Value};
    use dtr_model::schema::Schema;
    use dtr_model::types::{AtomicType, Type};
    use dtr_model::value::MappingName;

    fn setup() -> (Schema, Instance) {
        let schema = Schema::build(
            "Pdb",
            vec![(
                "contacts",
                Type::relation(vec![
                    ("title", AtomicType::String),
                    ("phone", AtomicType::String),
                ]),
            )],
        )
        .unwrap();
        let mut inst = Instance::new("Pdb");
        let root = inst.install_root(
            "contacts",
            Value::set(vec![Value::record(vec![
                ("title", Value::str("HomeGain")),
                ("phone", Value::str("18009468501")),
            ])]),
        );
        inst.annotate_elements(&schema).unwrap();
        let member = inst.set_members(root).unwrap()[0];
        let title = inst.child_by_label(member, "title").unwrap();
        inst.add_mapping(title, MappingName::new("m2"));
        inst.add_mapping(title, MappingName::new("m3"));
        (schema, inst)
    }

    #[test]
    fn get_el_annot_returns_element() {
        let (schema, inst) = setup();
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        let q = parse_query("select getElAnnot(c.title) from contacts c").unwrap();
        let r = Evaluator::new(&catalog, &funcs).run(&q).unwrap();
        assert_eq!(r.len(), 1);
        match &r.rows[0][0].value {
            AtomicValue::Elem(e) => {
                assert_eq!(e.db, "Pdb");
                assert_eq!(e.path, "/contacts/title");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn get_map_annot_binds_in_from() {
        let (schema, inst) = setup();
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        let q = parse_query("select mv from contacts c, getMapAnnot(c.title) mv").unwrap();
        let r = Evaluator::new(&catalog, &funcs).run(&q).unwrap();
        assert_eq!(r.len(), 2);
        let names: Vec<String> = r.tuples().iter().map(|t| t[0].to_string()).collect();
        assert!(names.contains(&"m2".to_string()));
        assert!(names.contains(&"m3".to_string()));
    }

    #[test]
    fn concat_builds_strings() {
        let (schema, inst) = setup();
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        let q = parse_query("select concat(c.title, '/', c.phone) from contacts c").unwrap();
        let r = Evaluator::new(&catalog, &funcs).run(&q).unwrap();
        assert_eq!(r.tuples()[0][0], AtomicValue::str("HomeGain/18009468501"));
    }

    #[test]
    fn unknown_function_errors() {
        let (schema, inst) = setup();
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        let q = parse_query("select nosuch(c.title) from contacts c").unwrap();
        assert!(matches!(
            Evaluator::new(&catalog, &funcs).run(&q),
            Err(EvalError::UnknownFunction(_))
        ));
    }

    #[test]
    fn custom_function_registration() {
        let (schema, inst) = setup();
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let mut funcs = FunctionRegistry::with_builtins();
        funcs.register("upper", |args, _| match &args[0].value {
            Some(AtomicValue::Str(s)) => Ok(FunctionValue::One(AtomicValue::Str(s.to_uppercase()))),
            _ => Err(EvalError::Function("upper wants a string".into())),
        });
        assert!(funcs.names().contains(&"upper"));
        let q = parse_query("select upper(c.title) from contacts c").unwrap();
        let r = Evaluator::new(&catalog, &funcs).run(&q).unwrap();
        assert_eq!(r.tuples()[0][0], AtomicValue::str("HOMEGAIN"));
    }

    #[test]
    fn annotation_function_arity_checked() {
        let (schema, inst) = setup();
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        let q = parse_query("select getElAnnot(c.title, c.phone) from contacts c").unwrap();
        assert!(matches!(
            Evaluator::new(&catalog, &funcs).run(&q),
            Err(EvalError::Function(_))
        ));
    }
}
