//! # dtr-query — the query language of Section 4.2 and its MXQL surface
//!
//! Select-from-where queries with path expressions over the nested
//! relational model, union-choice selection (`a.title->name`), correlated
//! bindings, function calls, and — for MXQL — the `@elem` / `@map`
//! operators and mapping predicates of Section 5.
//!
//! * [`ast`] — the abstract syntax.
//! * [`parser`] — the concrete text syntax used throughout the paper's
//!   examples.
//! * [`check`] — static well-formedness checking and schema resolution.
//! * [`eval`] — the evaluator over (annotated) instances.
//! * [`functions`] — the function-call mechanism, with `concat`,
//!   `getElAnnot` and `getMapAnnot` built in.
//! * [`logical`] / [`physical`] / [`plan`] — the planner pipeline:
//!   logical stage chains with pushdown/join-extraction rewrites,
//!   cost-based physical planning from the statistics catalog, and
//!   fingerprint-keyed compiled-plan caching with structural
//!   confirmation.
//!
//! ```
//! use dtr_model::prelude::*;
//! use dtr_query::prelude::*;
//!
//! let schema = Schema::build(
//!     "Pdb",
//!     vec![(
//!         "estates",
//!         Type::relation(vec![
//!             ("hid", AtomicType::String),
//!             ("value", AtomicType::Integer),
//!         ]),
//!     )],
//! )
//! .unwrap();
//! let mut inst = Instance::new("Pdb");
//! inst.install_root(
//!     "estates",
//!     Value::set(vec![
//!         Value::record(vec![("hid", Value::str("H1")), ("value", Value::int(700_000))]),
//!         Value::record(vec![("hid", Value::str("H2")), ("value", Value::int(300_000))]),
//!     ]),
//! );
//! inst.annotate_elements(&schema).unwrap();
//!
//! let q = parse_query("select e.hid from estates e where e.value > 500000").unwrap();
//! let catalog = Catalog::new(vec![Source { schema: &schema, instance: &inst }]);
//! let funcs = FunctionRegistry::with_builtins();
//! let result = Evaluator::new(&catalog, &funcs).run(&q).unwrap();
//! assert_eq!(result.tuples(), vec![vec![AtomicValue::str("H1")]]);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod check;
pub mod eval;
pub mod functions;
pub mod logical;
pub mod parser;
pub mod physical;
pub mod plan;

/// Convenient glob-import of the most used names.
pub mod prelude {
    pub use crate::ast::{
        Binding, CmpOp, Comparison, Condition, Expr, MappingPred, PathExpr, PathStart, Query, Step,
        Term,
    };
    pub use crate::check::{check_query, CheckError, Resolved, SchemaCatalog, VarTarget};
    pub use crate::eval::{
        Catalog, EvalError, EvalOptions, Evaluator, MetaEnv, OutValue, PredTriple, QueryResult,
        Source, Val,
    };
    pub use crate::functions::{ArgValue, FunctionRegistry, FunctionValue};
    pub use crate::logical::{LogicalPlan, LogicalStage};
    pub use crate::parser::{parse_mapping_parts, parse_query, ParseError};
    pub use crate::physical::{JoinAlgo, PhysicalPlan};
    pub use crate::plan::{compile, CompiledPlan, PlanCache, PlanCacheStats};
}

pub use prelude::*;
