//! Query evaluation over (annotated) instances.
//!
//! The evaluator implements the semantics of Section 4.2: a *valuation*
//! instantiates the query variables to instance values such that the
//! structure and conditions are satisfied; each result tuple is a tuple of
//! **facts** — atomic values together with their positions in the instance
//! ("the result of a query is not considered a simple set of values, but a
//! set of facts", Section 6).
//!
//! MXQL constructs evaluate per Section 5:
//! * `exp@elem` returns `f_el(v)` as an `Element` value;
//! * `exp@map` returns `f_mp(v)` as a set of `Mapping` values;
//! * mapping predicates draw `(source element, mapping, target element)`
//!   triples from a [`MetaEnv`] — implemented by the mapping-setting type in
//!   `dtr-core` — and act as generators for their unbound variables.

use crate::ast::*;
use crate::functions::{ArgValue, FunctionRegistry, FunctionValue};
use dtr_model::instance::{Instance, NodeId};
use dtr_model::schema::Schema;
use dtr_model::value::{AtomicValue, ElementRef, MappingName};
use dtr_obs::guard::{Budget, GuardError, Meter};
use dtr_obs::OpNode;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::Instant;

/// One queryable data source: a schema and an instance conforming to it.
#[derive(Clone, Copy)]
pub struct Source<'a> {
    /// The source's schema.
    pub schema: &'a Schema,
    /// The source's (possibly annotated) instance.
    pub instance: &'a Instance,
}

/// The set of data sources visible to a query.
#[derive(Clone, Default)]
pub struct Catalog<'a> {
    sources: Vec<Source<'a>>,
}

impl<'a> Catalog<'a> {
    /// Builds a catalog. Root labels should be unique across sources.
    pub fn new(sources: Vec<Source<'a>>) -> Self {
        Catalog { sources }
    }

    /// Adds a source.
    pub fn push(&mut self, source: Source<'a>) {
        self.sources.push(source);
    }

    /// All sources.
    pub fn sources(&self) -> &[Source<'a>] {
        &self.sources
    }

    /// The source at an index.
    pub fn source(&self, idx: usize) -> Source<'a> {
        self.sources[idx]
    }

    /// Finds `(source index, root node)` for a root label.
    pub fn find_root(&self, label: &str) -> Option<(usize, NodeId)> {
        self.sources
            .iter()
            .enumerate()
            .find_map(|(i, s)| s.instance.root(label).map(|n| (i, n)))
    }

    /// Finds a source index by database name.
    pub fn by_name(&self, db: &str) -> Option<usize> {
        self.sources.iter().position(|s| s.instance.db() == db)
    }
}

/// A runtime value: an instance node (a fact) or a bare atomic value.
#[derive(Clone, Debug, PartialEq)]
pub enum Val {
    /// A node of a catalog instance: `(source index, node)`.
    Node(usize, NodeId),
    /// A computed atomic value with no instance position.
    Atom(AtomicValue),
}

/// A `(source element, mapping, target element)` triple exposed by a
/// mapping setting for mapping-predicate evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PredTriple {
    /// The source schema element.
    pub src: ElementRef,
    /// The mapping.
    pub mapping: MappingName,
    /// The target schema element.
    pub tgt: ElementRef,
}

/// Supplies mapping-predicate triples. Implemented by
/// `dtr_core::TaggedInstance` over its mapping setting.
pub trait MetaEnv {
    /// All triples satisfying the single-arrow (`double == false`,
    /// where-provenance) or double-arrow (`double == true`,
    /// what-provenance) predicate.
    fn triples(&self, double: bool) -> Vec<PredTriple>;
}

/// Evaluation options.
#[derive(Clone, Debug)]
pub struct EvalOptions {
    /// Apply each comparison as soon as all of its variables are bound
    /// (predicate pushdown). Disabling this evaluates all conditions only
    /// after the full cross product — the naive semantics — and exists for
    /// the ablation benchmarks.
    pub pushdown: bool,
    /// Evaluate equi-joins by building a hash table over the candidate
    /// items (and metastore triples) and probing it per row, instead of
    /// the nested-loop scan. Disabling this keeps the nested-loop path so
    /// dtr-check can assert both engines agree. Meaningless without
    /// `pushdown` (the naive mode has no ready comparisons to join on):
    /// [`EvalOptions::canonical`] — applied by
    /// [`Evaluator::with_options`] — clears it in that case, so no
    /// hash-keyed structure is ever built in naive mode.
    pub hash_join: bool,
    /// Per-`from`-binding hash-join permission, indexed by binding
    /// position: `Some(allow)` lets the planner force nested-loop
    /// (`allow[bi] == false`) on joins whose estimated build side is too
    /// small to amortize a hash table, while leaving the evaluator's own
    /// join detection in charge everywhere `allow[bi]` is `true`. Ignored
    /// (and cleared by [`EvalOptions::canonical`]) when `hash_join` is
    /// off. `None` (the default) permits hash joins on every binding.
    pub hash_join_per_binding: Option<std::sync::Arc<Vec<bool>>>,
    /// Resource budget for one evaluation: binding/row/byte caps, a
    /// wall-clock deadline and a cooperative cancel flag. Exceeding it
    /// aborts the run with [`EvalError::Guard`]. Unlimited by default.
    pub budget: Budget,
    /// Per-path member-domain restriction for semi-naive delta joins: a
    /// root-rooted `from`-item path (rendered, e.g. `"Yahoo.listings"`)
    /// maps to the set-member nodes its binding may enumerate. Bindings
    /// whose path is absent stay unrestricted; var-relative paths never
    /// match (their keys start with a variable, not a root). The
    /// incremental exchange uses this to re-enumerate only the bindings
    /// that involve changed tuples. `None` (the default) disables the
    /// filter entirely.
    pub domains: Option<std::sync::Arc<HashMap<String, HashSet<NodeId>>>>,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            pushdown: true,
            hash_join: true,
            hash_join_per_binding: None,
            budget: Budget::default(),
            domains: None,
        }
    }
}

impl EvalOptions {
    /// Canonicalizes flag interactions in one place: `hash_join` (and the
    /// per-binding overrides) are meaningless without `pushdown` — the
    /// naive mode has no ready comparisons to join on — so they are
    /// cleared rather than left to individual gate sites to remember.
    /// Every options funnel ([`Evaluator::with_options`]) applies this,
    /// so `{pushdown: false, hash_join: true}` and
    /// `{pushdown: false, hash_join: false}` are the same engine mode.
    pub fn canonical(mut self) -> Self {
        if !self.pushdown {
            self.hash_join = false;
        }
        if !self.hash_join {
            self.hash_join_per_binding = None;
        }
        self
    }

    /// Is a hash join permitted on `from`-binding `bi`? True only when
    /// `hash_join` is on and the planner's per-binding override (if any)
    /// has not forced nested-loop there.
    pub fn hash_join_for(&self, bi: usize) -> bool {
        self.hash_join
            && self
                .hash_join_per_binding
                .as_ref()
                .is_none_or(|allow| allow.get(bi).copied().unwrap_or(true))
    }
}

/// An output value: the atomic value plus, when the select expression was a
/// path into an instance, the node it came from (the *fact*).
#[derive(Clone, Debug, PartialEq)]
pub struct OutValue {
    /// The atomic value.
    pub value: AtomicValue,
    /// The instance position, if the value is a fact.
    pub node: Option<(usize, NodeId)>,
}

/// Work counters collected by a single [`Evaluator::run`] call. Always
/// filled (the increments are plain integer adds on the evaluator's own
/// loop variables), independent of the global `dtr-obs` profiling gate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Candidate items visited while enumerating `from`-clause bindings.
    pub tuples_scanned: u64,
    /// Variable bindings that survived each enumeration stage (including
    /// mapping-predicate unification).
    pub bindings_enumerated: u64,
    /// Mapping-predicate triples tested against candidate rows.
    pub predicate_triples_tested: u64,
    /// Candidate items tested after a hash-table probe (hash-join mode
    /// only; the nested-loop equivalent is counted in `tuples_scanned`).
    pub hash_probes: u64,
    /// Wall time of the whole evaluation, in nanoseconds. Summed when
    /// results are aggregated (translated MXQL branches, virtual unions),
    /// so latency percentiles can be extracted across repetitions.
    pub eval_ns: u64,
}

/// The result of evaluating a query.
#[derive(Clone, Debug, Default)]
pub struct QueryResult {
    /// Column headers (the select expressions, printed).
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<OutValue>>,
    /// Work counters for this evaluation (see [`EvalStats`]).
    pub stats: EvalStats,
}

impl QueryResult {
    /// The rows as plain atomic tuples.
    pub fn tuples(&self) -> Vec<Vec<AtomicValue>> {
        self.rows
            .iter()
            .map(|r| r.iter().map(|v| v.value.clone()).collect())
            .collect()
    }

    /// The distinct atomic tuples, in first-appearance order.
    pub fn distinct_tuples(&self) -> Vec<Vec<AtomicValue>> {
        let mut seen: HashSet<Vec<AtomicValue>> = HashSet::new();
        let mut out: Vec<Vec<AtomicValue>> = Vec::new();
        for t in self.tuples() {
            if seen.insert(t.clone()) {
                out.push(t);
            }
        }
        out
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the result as a simple aligned table.
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let s = v.value.to_string();
                        if i < widths.len() && s.len() > widths[i] {
                            widths[i] = s.len();
                        }
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(c);
                if i + 1 < cells.len() {
                    for _ in c.len()..widths[i] {
                        out.push(' ');
                    }
                }
            }
            out.push('\n');
        };
        fmt_row(&self.columns, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        for _ in 0..total {
            out.push('-');
        }
        out.push('\n');
        for r in &rendered {
            fmt_row(r, &widths, &mut out);
        }
        out
    }
}

/// Runtime evaluation errors.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// A path starts at a root no catalog instance declares.
    UnknownRoot(String),
    /// A variable was used before being bound.
    UnboundVariable(String),
    /// A binding source did not evaluate to something iterable.
    NotIterable(String),
    /// A select or comparison expression evaluated to a complex value.
    ComplexValue(String),
    /// A comparison between incomparable values.
    Incomparable(String),
    /// `@elem` was applied to a value with no element annotation.
    MissingElementAnnotation(String),
    /// An unknown function was called.
    UnknownFunction(String),
    /// A function rejected its arguments.
    Function(String),
    /// A mapping predicate was used without a [`MetaEnv`].
    NoMetaEnv,
    /// A projection label that does not exist on a record value (only
    /// reported in contexts where silent filtering would be wrong).
    BadProjection(String),
    /// A resource budget was exhausted (see [`EvalOptions::budget`]).
    Guard(GuardError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownRoot(r) => write!(f, "unknown root `{r}`"),
            EvalError::UnboundVariable(v) => write!(f, "unbound variable `{v}`"),
            EvalError::NotIterable(e) => write!(f, "binding source not iterable: {e}"),
            EvalError::ComplexValue(e) => write!(f, "expression yields a complex value: {e}"),
            EvalError::Incomparable(c) => write!(f, "incomparable values in `{c}`"),
            EvalError::MissingElementAnnotation(e) => {
                write!(f, "`{e}` has no element annotation; run annotate_elements")
            }
            EvalError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            EvalError::Function(m) => write!(f, "function error: {m}"),
            EvalError::NoMetaEnv => {
                write!(f, "mapping predicates need a mapping setting (MetaEnv)")
            }
            EvalError::BadProjection(p) => write!(f, "bad projection `{p}`"),
            EvalError::Guard(g) => write!(f, "{g}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<GuardError> for EvalError {
    fn from(g: GuardError) -> Self {
        EvalError::Guard(g)
    }
}

/// The evaluator.
pub struct Evaluator<'a> {
    catalog: &'a Catalog<'a>,
    functions: &'a FunctionRegistry,
    meta: Option<&'a dyn MetaEnv>,
    opts: EvalOptions,
}

/// Row environment: one slot per variable.
type Env = Vec<Option<Val>>;

/// A borrowed runtime value (see [`Val`]).
enum ValRef<'a> {
    Node(usize, NodeId),
    Atom(&'a AtomicValue),
}

/// A comparison operand: borrowed where possible, owned for computed
/// values, `None` when the expression has no valuation.
enum Operand<'a> {
    None,
    Ref(&'a AtomicValue),
    Owned(AtomicValue),
}

impl Operand<'_> {
    fn as_ref(&self) -> Option<&AtomicValue> {
        match self {
            Operand::None => None,
            Operand::Ref(v) => Some(v),
            Operand::Owned(v) => Some(v),
        }
    }
}

/// A precomputed comparison operand: `None` = not hoisted (depends on the
/// binding variable); `Some(v)` = hoisted, with `v` the operand's value
/// (itself `None` when the operand had no valuation).
type PreSide = Option<Option<AtomicValue>>;

/// Approximate in-memory size of a result value, charged against
/// `Budget::max_result_bytes`.
fn approx_value_bytes(v: &AtomicValue) -> u64 {
    16 + match v {
        AtomicValue::Str(s) | AtomicValue::Db(s) => s.len() as u64,
        AtomicValue::Map(m) => m.as_str().len() as u64,
        AtomicValue::Elem(e) => (e.db.len() + e.path.len()) as u64,
        AtomicValue::Int(_) | AtomicValue::Float(_) | AtomicValue::Bool(_) => 0,
    }
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator over a catalog with the given function registry.
    pub fn new(catalog: &'a Catalog<'a>, functions: &'a FunctionRegistry) -> Self {
        Evaluator {
            catalog,
            functions,
            meta: None,
            opts: EvalOptions::default(),
        }
    }

    /// Attaches a [`MetaEnv`] enabling mapping predicates.
    pub fn with_meta(mut self, meta: &'a dyn MetaEnv) -> Self {
        self.meta = Some(meta);
        self
    }

    /// Overrides evaluation options. The options are
    /// [canonicalized](EvalOptions::canonical) on the way in, so invalid
    /// flag combinations (`hash_join` without `pushdown`) never reach the
    /// evaluation loops.
    pub fn with_options(mut self, opts: EvalOptions) -> Self {
        self.opts = opts.canonical();
        self
    }

    /// Evaluates a query.
    pub fn run(&self, q: &Query) -> Result<QueryResult, EvalError> {
        self.run_impl(q, false).map(|(result, _)| result)
    }

    /// EXPLAIN ANALYZE: evaluates `q` with the exact same plan and row
    /// order as [`Evaluator::run`], additionally wrapping each logical
    /// operator (scan, bind, hash-join build/probe, map-pred, filter,
    /// project, sort, limit) in an [`OpNode`] recording actual rows
    /// in/out, elapsed wall time and guard charges. Instrumentation is
    /// read-only, so the result is byte-identical to a plain `run`. Every
    /// operator's elapsed time is folded into the shared log₂
    /// span-duration histogram. The tree is *returned*, not published:
    /// concurrent analyzed runs each own their plan, and a session that
    /// wants `profile_snapshot` to embed one (the REPL's `.analyze`)
    /// passes its own tree to `dtr_obs::analyze::set_last` explicitly.
    pub fn run_analyzed(&self, q: &Query) -> Result<(QueryResult, OpNode), EvalError> {
        let (result, plan) = self.run_impl(q, true)?;
        let plan = plan.expect("analyze mode always builds a plan");
        fold_durations(&plan);
        Ok((result, plan))
    }

    fn run_impl(
        &self,
        q: &Query,
        analyze: bool,
    ) -> Result<(QueryResult, Option<OpNode>), EvalError> {
        let span = dtr_obs::span("query.eval")
            .field("from_len", q.from.len())
            .field("conditions", q.conditions.len());
        dtr_obs::counters().queries_evaluated.incr();
        let started = Instant::now();
        let mut stats = EvalStats::default();
        let mut meter = self.opts.budget.meter("query.eval");
        let mut plan: Option<OpNode> = None;
        let collect_stats = dtr_obs::stats::enabled();
        let mut local_stats = dtr_obs::StatsCatalog::new();
        // Variable slots: declared vars first, then implicit ones.
        let mut var_index: HashMap<&str, usize> = HashMap::new();
        for b in &q.from {
            let next = var_index.len();
            var_index.entry(b.var.as_str()).or_insert(next);
        }
        for v in q.implicit_vars() {
            let next = var_index.len();
            var_index.entry(v).or_insert(next);
        }
        let nvars = var_index.len();

        // Split conditions.
        let comparisons: Vec<&Comparison> = q
            .conditions
            .iter()
            .filter_map(|c| match c {
                Condition::Cmp(cmp) => Some(cmp),
                _ => None,
            })
            .collect();
        let predicates: Vec<&MappingPred> = q
            .conditions
            .iter()
            .filter_map(|c| match c {
                Condition::MapPred(p) => Some(p),
                _ => None,
            })
            .collect();
        let mut cmp_done = vec![false; comparisons.len()];

        let mut rows: Vec<Env> = vec![vec![None; nvars]];

        // Precompute which comparisons become *ready* (all variables bound)
        // as each binding completes, so candidates can be tested in place
        // before any row is materialized.
        let mut bound: Vec<&str> = Vec::new();
        let cmp_vars: Vec<Vec<&str>> = comparisons
            .iter()
            .map(|cmp| {
                cmp.left
                    .variables()
                    .into_iter()
                    .chain(cmp.right.variables())
                    .collect()
            })
            .collect();
        let mut ready_at: Vec<Vec<usize>> = Vec::with_capacity(q.from.len());
        for b in &q.from {
            bound.push(b.var.as_str());
            let mut ready = Vec::new();
            for (ci, vars) in cmp_vars.iter().enumerate() {
                if cmp_done[ci] || !vars.iter().all(|v| bound.contains(v)) {
                    continue;
                }
                if !ready_at.iter().any(|r: &Vec<usize>| r.contains(&ci)) {
                    ready.push(ci);
                }
            }
            ready_at.push(ready);
        }

        // From-clause bindings, in order. Each candidate item is written
        // into the (mutable) current row and tested against the newly ready
        // comparisons; only survivors are cloned into the next generation.
        for (bi, b) in q.from.iter().enumerate() {
            let slot = var_index[b.var.as_str()];
            let stage_rows_in = rows.len() as u64;
            let probes_before = stats.hash_probes;
            let stage_t = stage_begin(analyze, &meter);
            let ready = if self.opts.pushdown {
                ready_at[bi].as_slice()
            } else {
                &[]
            };
            for &ci in ready {
                cmp_done[ci] = true;
            }
            // A binding source without variables (a schema root) produces
            // the same items for every row: compute them once, and
            // pre-filter them by the ready conditions whose other operand
            // is row-independent (constants and root paths) — e.g. the
            // `e.db = 'Portal'` filters of translated MXQL queries.
            let static_items: Option<Vec<Val>> = if b.source.variables().is_empty() {
                match rows.first() {
                    Some(env) => {
                        let mut items = self.binding_items(&b.source, env, &var_index)?;
                        for &ci in ready {
                            let cmp = comparisons[ci];
                            let l_vars = cmp.left.variables();
                            let r_vars = cmp.right.variables();
                            let candidate_only =
                                |vars: &Vec<&str>| vars.iter().all(|v| *v == b.var.as_str());
                            if !(candidate_only(&l_vars) && r_vars.is_empty()
                                || candidate_only(&r_vars) && l_vars.is_empty())
                            {
                                continue;
                            }
                            let slot_ci = var_index[b.var.as_str()];
                            let mut probe = env.clone();
                            let mut kept = Vec::with_capacity(items.len());
                            for item in items {
                                probe[slot_ci] = Some(item.clone());
                                if self.comparison_holds(cmp, &probe, &var_index)? {
                                    kept.push(item);
                                }
                            }
                            items = kept;
                        }
                        Some(items)
                    }
                    None => None,
                }
            } else {
                None
            };
            // Which comparison sides depend on this binding's variable?
            // The others are loop-invariant over the candidates and are
            // computed once per row.
            let side_invariant: Vec<(bool, bool)> = ready
                .iter()
                .map(|&ci| {
                    let cmp = comparisons[ci];
                    (
                        !cmp.left.variables().contains(&b.var.as_str()),
                        !cmp.right.variables().contains(&b.var.as_str()),
                    )
                })
                .collect();
            // Hash-join: when the candidate items are row-independent and
            // a ready equi-join comparison links the new variable to
            // earlier bindings, build one hash table over the items and
            // probe it per row instead of scanning every item per row.
            // Bucket mates are still confirmed with the real (coercing)
            // comparison, so conservative key sharing is harmless.
            let build_t = stage_begin(analyze, &meter);
            let join_table: Option<(usize, bool, HashMap<JoinKey, Vec<usize>>)> =
                match (self.opts.hash_join_for(bi), &static_items, rows.first()) {
                    (true, Some(items), Some(env0)) => {
                        let mut found = None;
                        for (k, &ci) in ready.iter().enumerate() {
                            let cmp = comparisons[ci];
                            if cmp.op != CmpOp::Eq {
                                continue;
                            }
                            let l_vars = cmp.left.variables();
                            let r_vars = cmp.right.variables();
                            let only_candidate = |vars: &[&str]| {
                                !vars.is_empty() && vars.iter().all(|v| *v == b.var.as_str())
                            };
                            let row_side =
                                |vars: &[&str]| !vars.is_empty() && !vars.contains(&b.var.as_str());
                            if only_candidate(&l_vars) && row_side(&r_vars) {
                                found = Some((k, true));
                                break;
                            }
                            if only_candidate(&r_vars) && row_side(&l_vars) {
                                found = Some((k, false));
                                break;
                            }
                        }
                        match found {
                            Some((k, cand_left)) => {
                                let cmp = comparisons[ready[k]];
                                let cand_expr = if cand_left { &cmp.left } else { &cmp.right };
                                let mut table: HashMap<JoinKey, Vec<usize>> = HashMap::new();
                                let mut probe = env0.clone();
                                for (idx, item) in items.iter().enumerate() {
                                    probe[slot] = Some(item.clone());
                                    if let Some(v) =
                                        self.out_value_opt(cand_expr, &probe, &var_index)?.value
                                    {
                                        for key in join_keys(&v) {
                                            table.entry(key).or_default().push(idx);
                                        }
                                    }
                                }
                                // The one-time build scan.
                                stats.tuples_scanned += items.len() as u64;
                                Some((k, cand_left, table))
                            }
                            None => None,
                        }
                    }
                    _ => None,
                };
            let build_node = match (&join_table, &static_items) {
                (Some(_), Some(items)) => finish_node(
                    build_t,
                    &meter,
                    "hash-build",
                    format!("{} {}", b.source, b.var),
                    items.len() as u64,
                    items.len() as u64,
                ),
                _ => None,
            };
            let mut next_rows = Vec::new();
            for mut env in rows {
                meter.poll()?;
                let mut pre: Vec<(PreSide, PreSide)> = Vec::with_capacity(ready.len());
                for (k, &ci) in ready.iter().enumerate() {
                    let cmp = comparisons[ci];
                    let l = if side_invariant[k].0 {
                        Some(self.out_value_opt(&cmp.left, &env, &var_index)?.value)
                    } else {
                        None
                    };
                    let r = if side_invariant[k].1 {
                        Some(self.out_value_opt(&cmp.right, &env, &var_index)?.value)
                    } else {
                        None
                    };
                    pre.push((l, r));
                }
                if let Some((jk, cand_left, table)) = &join_table {
                    let items = static_items.as_deref().unwrap_or(&[]);
                    // The probing side was hoisted into `pre` (it does not
                    // mention the binding variable). No valuation means the
                    // equi-join fails for every candidate.
                    let row_side = if *cand_left { &pre[*jk].1 } else { &pre[*jk].0 };
                    let Some(Some(row_val)) = row_side else {
                        continue;
                    };
                    let candidates = probe_buckets(table, &join_keys(row_val));
                    stats.hash_probes += candidates.len() as u64;
                    stats.tuples_scanned += candidates.len() as u64;
                    for &idx in &candidates {
                        env[slot] = Some(items[idx].clone());
                        let mut ok = true;
                        for (k, &ci) in ready.iter().enumerate() {
                            if !self.comparison_holds_pre(
                                comparisons[ci],
                                &pre[k].0,
                                &pre[k].1,
                                &env,
                                &var_index,
                            )? {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            next_rows.push(env.clone());
                            meter.check_bindings(
                                stats.bindings_enumerated + next_rows.len() as u64,
                            )?;
                        }
                    }
                    continue;
                }
                let items = match &static_items {
                    Some(cached) => cached.clone(),
                    None => self.binding_items(&b.source, &env, &var_index)?,
                };
                stats.tuples_scanned += items.len() as u64;
                for item in items {
                    env[slot] = Some(item);
                    let mut ok = true;
                    for (k, &ci) in ready.iter().enumerate() {
                        if !self.comparison_holds_pre(
                            comparisons[ci],
                            &pre[k].0,
                            &pre[k].1,
                            &env,
                            &var_index,
                        )? {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        next_rows.push(env.clone());
                        meter.check_bindings(stats.bindings_enumerated + next_rows.len() as u64)?;
                    }
                }
            }
            rows = next_rows;
            stats.bindings_enumerated += rows.len() as u64;
            meter.check_bindings(stats.bindings_enumerated)?;
            if analyze {
                let op = if join_table.is_some() {
                    "hash-probe"
                } else if b.source.variables().is_empty() {
                    "scan"
                } else {
                    "bind"
                };
                let mut label = format!("{} {}", b.source, b.var);
                if !ready.is_empty() {
                    label.push_str(&format!("; {} cond(s)", ready.len()));
                }
                push_stage(
                    &mut plan,
                    finish_node(stage_t, &meter, op, label, stage_rows_in, rows.len() as u64),
                    build_node,
                );
            }
            if collect_stats {
                if let Some(items) = &static_items {
                    local_stats.record_set(&canonical_expr(&b.source, q), items.len() as u64);
                }
                if let Some((jk, _, _)) = &join_table {
                    local_stats.record_join(
                        &canonical_join_key(comparisons[ready[*jk]], q),
                        dtr_obs::JoinStats {
                            build_rows: static_items.as_ref().map_or(0, |i| i.len() as u64),
                            probe_rows: stage_rows_in,
                            probes: stats.hash_probes - probes_before,
                            matches: rows.len() as u64,
                        },
                    );
                }
            }
            if rows.is_empty() {
                break;
            }
        }

        // Mapping predicates act as generators/filters. Triples are
        // pre-filtered against the predicate's constant slots once, instead
        // of per row.
        for p in &predicates {
            if rows.is_empty() {
                break;
            }
            let stage_rows_in = rows.len() as u64;
            let stage_t = stage_begin(analyze, &meter);
            let meta = self.meta.ok_or(EvalError::NoMetaEnv)?;
            let triples: Vec<PredTriple> = meta
                .triples(p.double)
                .into_iter()
                .filter(|t| pred_constants_match(p, t))
                .collect();
            // Index the triples by the first predicate position whose
            // variable is already bound to an atom (every row shares one
            // binding pattern), so each row probes a bucket instead of
            // scanning the whole catalog (rows × triples).
            let pred_index: Option<(usize, HashMap<JoinKey, Vec<usize>>)> = if self.opts.hash_join {
                rows.first()
                    .and_then(|env0| {
                        let terms: [&Term; 5] =
                            [&p.src_db, &p.src_elem, &p.mapping, &p.tgt_db, &p.tgt_elem];
                        terms.iter().enumerate().find_map(|(pos, t)| match t {
                            Term::Var(v) => var_index
                                .get(v.as_str())
                                .copied()
                                .filter(|&s| matches!(env0[s], Some(Val::Atom(_))))
                                .map(|s| (pos, s)),
                            Term::Const(_) => None,
                        })
                    })
                    .map(|(pos, env_slot)| {
                        let mut table: HashMap<JoinKey, Vec<usize>> = HashMap::new();
                        for (idx, t) in triples.iter().enumerate() {
                            for key in join_keys(&pred_slot_value(t, pos)) {
                                table.entry(key).or_default().push(idx);
                            }
                        }
                        (env_slot, table)
                    })
            } else {
                None
            };
            let mut next_rows = Vec::new();
            for env in &rows {
                meter.poll()?;
                if let Some((env_slot, table)) = &pred_index {
                    let Some(Val::Atom(existing)) = &env[*env_slot] else {
                        // A node-bound slot can never unify; the full scan
                        // would reject every triple too.
                        continue;
                    };
                    let candidates = probe_buckets(table, &join_keys(existing));
                    stats.predicate_triples_tested += candidates.len() as u64;
                    stats.hash_probes += candidates.len() as u64;
                    for &idx in &candidates {
                        if let Some(e2) = self.unify_pred(p, &triples[idx], env, &var_index)? {
                            next_rows.push(e2);
                        }
                    }
                    continue;
                }
                stats.predicate_triples_tested += triples.len() as u64;
                for t in &triples {
                    if let Some(e2) = self.unify_pred(p, t, env, &var_index)? {
                        next_rows.push(e2);
                    }
                }
            }
            rows = next_rows;
            stats.bindings_enumerated += rows.len() as u64;
            meter.check_bindings(stats.bindings_enumerated)?;
            if self.opts.pushdown {
                self.apply_ready_comparisons(&comparisons, &mut cmp_done, &var_index, &mut rows)?;
            }
            push_stage(
                &mut plan,
                finish_node(
                    stage_t,
                    &meter,
                    "map-pred",
                    p.to_string(),
                    stage_rows_in,
                    rows.len() as u64,
                ),
                None,
            );
        }

        // Remaining comparisons.
        let residual = cmp_done.iter().filter(|done| !**done).count();
        let filter_rows_in = rows.len() as u64;
        let filter_t = if residual > 0 {
            stage_begin(analyze, &meter)
        } else {
            None
        };
        for (i, cmp) in comparisons.iter().enumerate() {
            if cmp_done[i] {
                continue;
            }
            let mut kept = Vec::with_capacity(rows.len());
            for env in rows {
                if self.comparison_holds(cmp, &env, &var_index)? {
                    kept.push(env);
                }
            }
            rows = kept;
        }
        if residual > 0 {
            push_stage(
                &mut plan,
                finish_node(
                    filter_t,
                    &meter,
                    "filter",
                    format!("{residual} residual cond(s)"),
                    filter_rows_in,
                    rows.len() as u64,
                ),
                None,
            );
        }

        // Project the select clause.
        let proj_rows_in = rows.len() as u64;
        let proj_t = stage_begin(analyze, &meter);
        let mut out = QueryResult {
            columns: q.select.iter().map(|e| e.to_string()).collect(),
            rows: Vec::with_capacity(rows.len()),
            stats: EvalStats::default(),
        };
        let mut sort_keys: Vec<Vec<Option<AtomicValue>>> = Vec::new();
        'rows: for env in &rows {
            let mut tuple = Vec::with_capacity(q.select.len());
            for e in &q.select {
                let arg = self.out_value_opt(e, env, &var_index)?;
                match arg.value {
                    Some(value) => tuple.push(OutValue {
                        value,
                        node: arg.node,
                    }),
                    // A select expression with no valuation (a choice that
                    // selected another alternative, or a record field this
                    // value's generating mapping never assigned): the row
                    // has no valuation.
                    None => continue 'rows,
                }
            }
            meter.charge_rows(1)?;
            meter.charge_bytes(tuple.iter().map(|v| approx_value_bytes(&v.value)).sum())?;
            if !q.order_by.is_empty() {
                let mut keys = Vec::with_capacity(q.order_by.len());
                for k in &q.order_by {
                    keys.push(self.out_value_opt(&k.expr, env, &var_index)?.value);
                }
                sort_keys.push(keys);
            }
            out.rows.push(tuple);
        }
        push_stage(
            &mut plan,
            finish_node(
                proj_t,
                &meter,
                "project",
                format!("{} col(s)", q.select.len()),
                proj_rows_in,
                out.rows.len() as u64,
            ),
            None,
        );

        // The extension tail: order by, then limit.
        if !q.order_by.is_empty() {
            let sort_t = stage_begin(analyze, &meter);
            let mut indexed: Vec<usize> = (0..out.rows.len()).collect();
            indexed.sort_by(|&a, &b| {
                for (ki, k) in q.order_by.iter().enumerate() {
                    let ord = match (&sort_keys[a][ki], &sort_keys[b][ki]) {
                        (Some(x), Some(y)) => {
                            coerced_compare(x, y).unwrap_or(std::cmp::Ordering::Equal)
                        }
                        (None, Some(_)) => std::cmp::Ordering::Less,
                        (Some(_), None) => std::cmp::Ordering::Greater,
                        (None, None) => std::cmp::Ordering::Equal,
                    };
                    let ord = if k.descending { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            let mut reordered = Vec::with_capacity(out.rows.len());
            for i in indexed {
                reordered.push(std::mem::take(&mut out.rows[i]));
            }
            out.rows = reordered;
            let n = out.rows.len() as u64;
            push_stage(
                &mut plan,
                finish_node(
                    sort_t,
                    &meter,
                    "sort",
                    format!("{} key(s)", q.order_by.len()),
                    n,
                    n,
                ),
                None,
            );
        }
        if let Some(n) = q.limit {
            let limit_t = stage_begin(analyze, &meter);
            let limit_rows_in = out.rows.len() as u64;
            out.rows.truncate(n);
            push_stage(
                &mut plan,
                finish_node(
                    limit_t,
                    &meter,
                    "limit",
                    format!("limit {n}"),
                    limit_rows_in,
                    out.rows.len() as u64,
                ),
                None,
            );
        }
        stats.eval_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        out.stats = stats;
        let counters = dtr_obs::counters();
        counters.tuples_scanned.add(stats.tuples_scanned);
        counters.bindings_enumerated.add(stats.bindings_enumerated);
        counters.hash_probes.add(stats.hash_probes);
        span.record("tuples_scanned", stats.tuples_scanned);
        span.record("bindings", stats.bindings_enumerated);
        span.record("rows_out", out.rows.len());
        if collect_stats {
            dtr_obs::stats::merge(&local_stats);
        }
        Ok((out, plan))
    }

    fn apply_ready_comparisons(
        &self,
        comparisons: &[&Comparison],
        cmp_done: &mut [bool],
        var_index: &HashMap<&str, usize>,
        rows: &mut Vec<Env>,
    ) -> Result<(), EvalError> {
        for (i, cmp) in comparisons.iter().enumerate() {
            if cmp_done[i] {
                continue;
            }
            let vars: Vec<&str> = cmp
                .left
                .variables()
                .into_iter()
                .chain(cmp.right.variables())
                .collect();
            // Ready if every referenced variable is bound in every row.
            // All rows share the same binding pattern at this point, so
            // checking the first row suffices.
            let ready = match rows.first() {
                Some(env) => vars
                    .iter()
                    .all(|v| var_index.get(v).is_some_and(|&s| env[s].is_some())),
                None => false,
            };
            if !ready {
                continue;
            }
            cmp_done[i] = true;
            let mut kept = Vec::with_capacity(rows.len());
            for env in rows.drain(..) {
                if self.comparison_holds(cmp, &env, var_index)? {
                    kept.push(env);
                }
            }
            *rows = kept;
        }
        Ok(())
    }

    /// Evaluates a path expression to a value, or `None` when a choice step
    /// filters the valuation out.
    fn eval_path(
        &self,
        p: &PathExpr,
        env: &Env,
        var_index: &HashMap<&str, usize>,
    ) -> Result<Option<Val>, EvalError> {
        Ok(self.eval_path_ref(p, env, var_index)?.map(|v| match v {
            ValRef::Node(s, n) => Val::Node(s, n),
            ValRef::Atom(a) => Val::Atom(a.clone()),
        }))
    }

    /// Like [`Evaluator::eval_path`], but borrowing: atom results reference
    /// the environment directly, so hot comparison loops avoid cloning.
    fn eval_path_ref<'x>(
        &self,
        p: &PathExpr,
        env: &'x Env,
        var_index: &HashMap<&str, usize>,
    ) -> Result<Option<ValRef<'x>>, EvalError> {
        let mut cur: ValRef<'x> = match &p.start {
            PathStart::Root(r) => {
                let (s, n) = self
                    .catalog
                    .find_root(r)
                    .ok_or_else(|| EvalError::UnknownRoot(r.to_string()))?;
                ValRef::Node(s, n)
            }
            PathStart::Var(v) => {
                let slot = *var_index
                    .get(v.as_str())
                    .ok_or_else(|| EvalError::UnboundVariable(v.clone()))?;
                match env[slot].as_ref() {
                    Some(Val::Node(s, n)) => ValRef::Node(*s, *n),
                    Some(Val::Atom(a)) => ValRef::Atom(a),
                    None => return Err(EvalError::UnboundVariable(v.clone())),
                }
            }
        };
        for step in &p.steps {
            let (src, node) = match cur {
                ValRef::Node(s, n) => (s, n),
                ValRef::Atom(_) => return Err(EvalError::BadProjection(p.to_string())),
            };
            let inst = self.catalog.source(src).instance;
            match step {
                Step::Project(l) => match inst.child_by_label(node, l) {
                    Some(c) => cur = ValRef::Node(src, c),
                    // A conformant record always carries all fields;
                    // exchange-produced instances may omit unassigned ones,
                    // which simply yields no valuation.
                    None => return Ok(None),
                },
                Step::Choice(l) => match inst.choice_selection(node) {
                    Some((sel, c)) if sel == l.as_str() => cur = ValRef::Node(src, c),
                    // The choice selected a different alternative: filter.
                    Some(_) => return Ok(None),
                    None => return Ok(None),
                },
            }
        }
        Ok(Some(cur))
    }

    /// Evaluates a comparison operand without cloning where possible.
    fn operand<'x>(
        &'x self,
        e: &'x Expr,
        env: &'x Env,
        var_index: &HashMap<&str, usize>,
    ) -> Result<Operand<'x>, EvalError> {
        match e {
            Expr::Const(c) => Ok(Operand::Ref(c)),
            Expr::Path(p) => match self.eval_path_ref(p, env, var_index)? {
                None => Ok(Operand::None),
                Some(ValRef::Atom(a)) => Ok(Operand::Ref(a)),
                Some(ValRef::Node(s, n)) => match self.catalog.source(s).instance.atomic(n) {
                    Some(v) => Ok(Operand::Ref(v)),
                    None => Err(EvalError::ComplexValue(e.to_string())),
                },
            },
            other => match self.out_value_opt(other, env, var_index)?.value {
                Some(v) => Ok(Operand::Owned(v)),
                None => Ok(Operand::None),
            },
        }
    }

    /// The items a binding source generates for one row.
    fn binding_items(
        &self,
        source: &Expr,
        env: &Env,
        var_index: &HashMap<&str, usize>,
    ) -> Result<Vec<Val>, EvalError> {
        match source {
            Expr::Path(p) => {
                let Some(val) = self.eval_path(p, env, var_index)? else {
                    return Ok(Vec::new());
                };
                match &val {
                    Val::Node(s, n) => {
                        let inst = self.catalog.source(*s).instance;
                        if let Some(members) = inst.set_members(*n) {
                            // Semi-naive domain restriction: when the caller
                            // supplied a member domain for this root path,
                            // enumerate only those members (in set order).
                            let domain = self
                                .opts
                                .domains
                                .as_ref()
                                .and_then(|d| d.get(&p.to_string()));
                            Ok(members
                                .iter()
                                .filter(|m| domain.is_none_or(|d| d.contains(m)))
                                .map(|&m| Val::Node(*s, m))
                                .collect())
                        } else if matches!(p.steps.last(), Some(Step::Choice(_))) {
                            // A union-choice binding yields the single
                            // selected value (Section 4.2).
                            Ok(vec![val])
                        } else {
                            Err(EvalError::NotIterable(source.to_string()))
                        }
                    }
                    Val::Atom(_) => Err(EvalError::NotIterable(source.to_string())),
                }
            }
            Expr::MapOf(p) => {
                let Some(val) = self.eval_path(p, env, var_index)? else {
                    return Ok(Vec::new());
                };
                let Val::Node(s, n) = val else {
                    return Err(EvalError::NotIterable(source.to_string()));
                };
                let inst = self.catalog.source(s).instance;
                Ok(inst
                    .annotation(n)
                    .mappings
                    .iter()
                    .map(|m| Val::Atom(AtomicValue::Map(m.clone())))
                    .collect())
            }
            Expr::Call(name, args) => match self.call_function(name, args, env, var_index)? {
                Some(FunctionValue::One(v)) => Ok(vec![Val::Atom(v)]),
                Some(FunctionValue::Many(vs)) => Ok(vs.into_iter().map(Val::Atom).collect()),
                None => Ok(Vec::new()),
            },
            other => Err(EvalError::NotIterable(other.to_string())),
        }
    }

    fn call_function(
        &self,
        name: &str,
        args: &[Expr],
        env: &Env,
        var_index: &HashMap<&str, usize>,
    ) -> Result<Option<FunctionValue>, EvalError> {
        let mut arg_vals = Vec::with_capacity(args.len());
        for a in args {
            let out = self.out_value_opt(a, env, var_index)?;
            if out.value.is_none() && out.node.is_none() {
                // A choice step filtered a path argument out: the call has
                // no valuation for this row, like any other expression over
                // a filtered path. This keeps the §7.3 translation (which
                // rewrites `@map`/`@elem` into `getMapAnnot`/`getElAnnot`
                // calls) equivalent to the direct semantics on
                // choice-crossing paths.
                return Ok(None);
            }
            arg_vals.push(out);
        }
        let f = self
            .functions
            .get(name)
            .ok_or_else(|| EvalError::UnknownFunction(name.to_string()))?;
        f(&arg_vals, self.catalog).map(Some)
    }

    /// Evaluates an expression to an [`ArgValue`] (value + optional node).
    fn out_value_opt(
        &self,
        e: &Expr,
        env: &Env,
        var_index: &HashMap<&str, usize>,
    ) -> Result<ArgValue, EvalError> {
        match e {
            Expr::Const(c) => Ok(ArgValue {
                value: Some(c.clone()),
                node: None,
            }),
            Expr::Path(p) => match self.eval_path(p, env, var_index)? {
                None => Ok(ArgValue {
                    value: None,
                    node: None,
                }),
                Some(Val::Atom(a)) => Ok(ArgValue {
                    value: Some(a),
                    node: None,
                }),
                Some(Val::Node(s, n)) => {
                    let inst = self.catalog.source(s).instance;
                    match inst.atomic(n) {
                        Some(v) => Ok(ArgValue {
                            value: Some(v.clone()),
                            node: Some((s, n)),
                        }),
                        None => Err(EvalError::ComplexValue(e.to_string())),
                    }
                }
            },
            Expr::ElemOf(p) => match self.eval_path(p, env, var_index)? {
                None => Ok(ArgValue {
                    value: None,
                    node: None,
                }),
                Some(Val::Node(s, n)) => {
                    let source = self.catalog.source(s);
                    let elem = source
                        .instance
                        .annotation(n)
                        .element
                        .ok_or_else(|| EvalError::MissingElementAnnotation(e.to_string()))?;
                    Ok(ArgValue {
                        value: Some(AtomicValue::Elem(ElementRef::new(
                            source.instance.db(),
                            source.schema.path(elem),
                        ))),
                        node: None,
                    })
                }
                Some(Val::Atom(_)) => Err(EvalError::ComplexValue(e.to_string())),
            },
            Expr::MapOf(_) => Err(EvalError::ComplexValue(format!(
                "`{e}` is set-valued; bind it in the from clause"
            ))),
            Expr::Call(name, args) => match self.call_function(name, args, env, var_index)? {
                Some(FunctionValue::One(v)) => Ok(ArgValue {
                    value: Some(v),
                    node: None,
                }),
                Some(FunctionValue::Many(_)) => Err(EvalError::ComplexValue(format!(
                    "`{e}` is set-valued; bind it in the from clause"
                ))),
                None => Ok(ArgValue {
                    value: None,
                    node: None,
                }),
            },
        }
    }

    fn comparison_holds(
        &self,
        cmp: &Comparison,
        env: &Env,
        var_index: &HashMap<&str, usize>,
    ) -> Result<bool, EvalError> {
        let l = self.operand(&cmp.left, env, var_index)?;
        let r = self.operand(&cmp.right, env, var_index)?;
        self.compare_sides(cmp, l.as_ref(), r.as_ref())
    }

    /// Like [`Evaluator::comparison_holds`], but with one or both operand
    /// values already computed (the join loop hoists operands that do not
    /// depend on the binding variable out of the candidate loop). Hoisted
    /// values are compared by reference — no per-candidate clones.
    fn comparison_holds_pre(
        &self,
        cmp: &Comparison,
        pre_left: &PreSide,
        pre_right: &PreSide,
        env: &Env,
        var_index: &HashMap<&str, usize>,
    ) -> Result<bool, EvalError> {
        let l_owned;
        let l = match pre_left {
            Some(v) => v.as_ref(),
            None => {
                l_owned = self.operand(&cmp.left, env, var_index)?;
                l_owned.as_ref()
            }
        };
        let r_owned;
        let r = match pre_right {
            Some(v) => v.as_ref(),
            None => {
                r_owned = self.operand(&cmp.right, env, var_index)?;
                r_owned.as_ref()
            }
        };
        self.compare_sides(cmp, l, r)
    }

    fn compare_sides(
        &self,
        cmp: &Comparison,
        l: Option<&AtomicValue>,
        r: Option<&AtomicValue>,
    ) -> Result<bool, EvalError> {
        let (Some(lv), Some(rv)) = (l, r) else {
            // A filtered-out choice path: no valuation, condition fails.
            return Ok(false);
        };
        match coerced_compare(lv, rv) {
            Some(ord) => Ok(cmp.op.test(ord)),
            None => {
                if cmp.op == CmpOp::Eq {
                    Ok(false)
                } else if cmp.op == CmpOp::Ne {
                    Ok(true)
                } else {
                    Err(EvalError::Incomparable(cmp.to_string()))
                }
            }
        }
    }

    /// Unifies a mapping predicate against one triple, extending `env`.
    fn unify_pred(
        &self,
        p: &MappingPred,
        t: &PredTriple,
        env: &Env,
        var_index: &HashMap<&str, usize>,
    ) -> Result<Option<Env>, EvalError> {
        let mut out = env.clone();
        let slots: [(&Term, AtomicValue); 5] = [
            (&p.src_db, AtomicValue::Db(t.src.db.clone())),
            (&p.src_elem, AtomicValue::Elem(t.src.clone())),
            (&p.mapping, AtomicValue::Map(t.mapping.clone())),
            (&p.tgt_db, AtomicValue::Db(t.tgt.db.clone())),
            (&p.tgt_elem, AtomicValue::Elem(t.tgt.clone())),
        ];
        for (term, actual) in slots {
            match term {
                Term::Const(c) => {
                    if !meta_matches(c, &actual) {
                        return Ok(None);
                    }
                }
                Term::Var(v) => {
                    let slot = *var_index
                        .get(v.as_str())
                        .ok_or_else(|| EvalError::UnboundVariable(v.clone()))?;
                    match &out[slot] {
                        Some(Val::Atom(existing)) => {
                            if !meta_matches(existing, &actual) {
                                return Ok(None);
                            }
                        }
                        Some(Val::Node(..)) => return Ok(None),
                        None => out[slot] = Some(Val::Atom(actual)),
                    }
                }
            }
        }
        Ok(Some(out))
    }
}

/// A conservative hash key for equi-join bucketing: values that
/// [`coerced_compare`] treats as equal always share at least one key, so
/// a bucket probe can only miss values that could never compare equal.
/// Bucket mates are *confirmed* with the real comparison before use, so
/// spurious key sharing is harmless (it only costs an extra test).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum JoinKey {
    /// Int (widened) and Float, keyed by the widened f64 bit pattern —
    /// exactly the pairs `AtomicValue::compare` can call equal.
    Num(u64),
    Bool(bool),
    /// Str text, Db names, Map names, and Elem paths share one text key
    /// space, because MXQL string constants coerce against meta values.
    Text(String),
}

/// The keys a value is findable under. A plain string yields up to two:
/// its text (matching Str/Db/Map) and its canonical element path
/// (matching Elem) — mirroring the two branches of `meta_str_compare`.
/// Starts an EXPLAIN ANALYZE stage timer: wall clock plus the guard
/// meter's tick count, so the finished node can report both elapsed time
/// and guard charges. `None` (zero cost) outside analyze mode.
fn stage_begin(analyze: bool, meter: &Meter) -> Option<(Instant, u64)> {
    analyze.then(|| (Instant::now(), meter.ticks()))
}

/// Closes a stage timer into an [`OpNode`]; `None` in, `None` out.
fn finish_node(
    t: Option<(Instant, u64)>,
    meter: &Meter,
    op: &str,
    label: String,
    rows_in: u64,
    rows_out: u64,
) -> Option<OpNode> {
    let (start, ticks0) = t?;
    let mut node = OpNode::new(op, label);
    node.rows_in = rows_in;
    node.rows_out = rows_out;
    node.elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    node.guard_charges = meter.ticks().saturating_sub(ticks0);
    Some(node)
}

/// Chains a finished stage node onto the growing plan: the previous chain
/// becomes the new node's first child (its upstream input), side inputs
/// like a hash-build follow.
fn push_stage(plan: &mut Option<OpNode>, node: Option<OpNode>, extra_child: Option<OpNode>) {
    let Some(mut node) = node else { return };
    if let Some(prev) = plan.take() {
        node.children.push(prev);
    }
    if let Some(extra) = extra_child {
        node.children.push(extra);
    }
    *plan = Some(node);
}

/// Folds every operator's elapsed time into the shared log₂ span-duration
/// histogram (the "histogram reuse" of the analyze mode).
fn fold_durations(node: &OpNode) {
    dtr_obs::counters().span_duration_ns.record(node.elapsed_ns);
    for child in &node.children {
        fold_durations(child);
    }
}

/// Renders a path expression with variable starts expanded through the
/// query's `from` chain into root-rooted paths, so statistics keys are
/// stable under alpha-renaming of query variables.
fn canonical_path(p: &PathExpr, q: &Query, depth: usize) -> String {
    let mut out = match &p.start {
        PathStart::Root(r) => r.to_string(),
        PathStart::Var(v) => {
            let source = if depth < 8 {
                q.from.iter().find(|b| &b.var == v)
            } else {
                None
            };
            match source {
                Some(b) => canonical_source(&b.source, q, depth + 1),
                None => v.clone(),
            }
        }
    };
    for s in &p.steps {
        match s {
            Step::Project(l) => {
                out.push('.');
                out.push_str(l.as_ref());
            }
            Step::Choice(l) => {
                out.push_str("->");
                out.push_str(l.as_ref());
            }
        }
    }
    out
}

fn canonical_source(e: &Expr, q: &Query, depth: usize) -> String {
    match e {
        Expr::Path(p) => canonical_path(p, q, depth),
        Expr::ElemOf(p) => format!("{}@elem", canonical_path(p, q, depth)),
        Expr::MapOf(p) => format!("{}@map", canonical_path(p, q, depth)),
        Expr::Const(c) => c.display_quoted().to_string(),
        Expr::Call(name, args) => {
            let args: Vec<String> = args.iter().map(|a| canonical_source(a, q, depth)).collect();
            format!("{name}({})", args.join(", "))
        }
    }
}

/// The canonical statistics key of an expression (see `canonical_path`).
pub fn canonical_expr(e: &Expr, q: &Query) -> String {
    canonical_source(e, q, 0)
}

/// Canonicalized equality-join key: both sides expanded to root-rooted
/// paths and sorted, so `a.id = l.agent` and `l.agent = a.id` land on one
/// statistics entry regardless of variable names or operand order.
pub fn canonical_join_key(cmp: &Comparison, q: &Query) -> String {
    let mut sides = [canonical_expr(&cmp.left, q), canonical_expr(&cmp.right, q)];
    sides.sort();
    format!("{} = {}", sides[0], sides[1])
}

fn join_keys(v: &AtomicValue) -> Vec<JoinKey> {
    match v {
        AtomicValue::Str(s) => {
            let canon = dtr_model::value::canonical_path(s);
            if canon == *s {
                vec![JoinKey::Text(s.clone())]
            } else {
                vec![JoinKey::Text(s.clone()), JoinKey::Text(canon)]
            }
        }
        AtomicValue::Int(i) => vec![JoinKey::Num((*i as f64).to_bits())],
        AtomicValue::Float(x) => vec![JoinKey::Num(x.to_bits())],
        AtomicValue::Bool(b) => vec![JoinKey::Bool(*b)],
        AtomicValue::Db(d) => vec![JoinKey::Text(d.clone())],
        AtomicValue::Map(m) => vec![JoinKey::Text(m.as_str().to_string())],
        AtomicValue::Elem(e) => vec![JoinKey::Text(e.path.clone())],
    }
}

/// Merges the (ascending) bucket lists for a set of probe keys into one
/// ascending, deduplicated candidate list — preserving exactly the order
/// the nested-loop scan would have visited the candidates in, so both
/// engines produce identical row orders.
fn probe_buckets(table: &HashMap<JoinKey, Vec<usize>>, keys: &[JoinKey]) -> Vec<usize> {
    match keys {
        [k] => table.get(k).cloned().unwrap_or_default(),
        [k1, k2] => {
            let a: &[usize] = table.get(k1).map_or(&[], |v| v.as_slice());
            let b: &[usize] = table.get(k2).map_or(&[], |v| v.as_slice());
            let mut out = Vec::with_capacity(a.len() + b.len());
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => {
                        out.push(a[i]);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        out.push(b[j]);
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        out.push(a[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            out.extend_from_slice(&a[i..]);
            out.extend_from_slice(&b[j..]);
            out
        }
        _ => Vec::new(),
    }
}

/// The atomic value at one of the five mapping-predicate positions of a
/// triple (src db, src elem, mapping, tgt db, tgt elem).
fn pred_slot_value(t: &PredTriple, pos: usize) -> AtomicValue {
    match pos {
        0 => AtomicValue::Db(t.src.db.clone()),
        1 => AtomicValue::Elem(t.src.clone()),
        2 => AtomicValue::Map(t.mapping.clone()),
        3 => AtomicValue::Db(t.tgt.db.clone()),
        _ => AtomicValue::Elem(t.tgt.clone()),
    }
}

/// Compares two atomic values, coercing plain strings against meta values:
/// MXQL constants are written as quoted strings but denote databases,
/// mappings and element paths (Section 5's examples).
pub fn coerced_compare(a: &AtomicValue, b: &AtomicValue) -> Option<std::cmp::Ordering> {
    if let Some(ord) = a.compare(b) {
        return Some(ord);
    }
    meta_str_compare(a, b).or_else(|| meta_str_compare(b, a).map(std::cmp::Ordering::reverse))
}

fn meta_str_compare(s: &AtomicValue, m: &AtomicValue) -> Option<std::cmp::Ordering> {
    let AtomicValue::Str(text) = s else {
        return None;
    };
    match m {
        AtomicValue::Db(d) => Some(text.as_str().cmp(d.as_str())),
        AtomicValue::Map(name) => Some(text.as_str().cmp(name.as_str())),
        AtomicValue::Elem(e) => {
            let canon = dtr_model::value::canonical_path(text);
            Some(canon.as_str().cmp(e.path.as_str()))
        }
        _ => None,
    }
}

/// True when a constant (possibly a plain string) denotes the same meta
/// value.
fn meta_matches(c: &AtomicValue, actual: &AtomicValue) -> bool {
    coerced_compare(c, actual) == Some(std::cmp::Ordering::Equal)
}

/// Row-independent pre-filter: does the triple agree with the predicate's
/// constant slots?
fn pred_constants_match(p: &MappingPred, t: &PredTriple) -> bool {
    let check = |term: &Term, actual: AtomicValue| match term {
        Term::Const(c) => meta_matches(c, &actual),
        Term::Var(_) => true,
    };
    check(&p.src_db, AtomicValue::Db(t.src.db.clone()))
        && check(&p.src_elem, AtomicValue::Elem(t.src.clone()))
        && check(&p.mapping, AtomicValue::Map(t.mapping.clone()))
        && check(&p.tgt_db, AtomicValue::Db(t.tgt.db.clone()))
        && check(&p.tgt_elem, AtomicValue::Elem(t.tgt.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::FunctionRegistry;
    use crate::parser::parse_query;
    use dtr_model::instance::Value;
    use dtr_model::types::{AtomicType, Type};

    fn us_schema() -> Schema {
        Schema::build(
            "USdb",
            vec![(
                "US",
                Type::record(vec![
                    (
                        "houses",
                        Type::relation(vec![
                            ("hid", AtomicType::String),
                            ("price", AtomicType::Integer),
                            ("aid", AtomicType::String),
                        ]),
                    ),
                    (
                        "agents",
                        Type::set(Type::record(vec![
                            ("aid", Type::string()),
                            (
                                "title",
                                Type::choice(vec![
                                    ("name", Type::string()),
                                    ("firm", Type::string()),
                                ]),
                            ),
                            ("phone", Type::string()),
                        ])),
                    ),
                ]),
            )],
        )
        .unwrap()
    }

    fn us_instance() -> Instance {
        let mut inst = Instance::new("USdb");
        let house = |hid: &str, price: i64, aid: &str| {
            Value::record(vec![
                ("hid", Value::str(hid)),
                ("price", Value::int(price)),
                ("aid", Value::str(aid)),
            ])
        };
        let agent = |aid: &str, alt: &str, title: &str, phone: &str| {
            Value::record(vec![
                ("aid", Value::str(aid)),
                ("title", Value::choice(alt, Value::str(title))),
                ("phone", Value::str(phone)),
            ])
        };
        inst.install_root(
            "US",
            Value::record(vec![
                (
                    "houses",
                    Value::set(vec![
                        house("H1", 450_000, "a1"),
                        house("H2", 750_000, "a2"),
                        house("H3", 820_000, "a1"),
                    ]),
                ),
                (
                    "agents",
                    Value::set(vec![
                        agent("a1", "name", "Smith", "555-1111"),
                        agent("a2", "firm", "HomeGain", "555-2222"),
                    ]),
                ),
            ]),
        );
        inst
    }

    fn run(text: &str) -> QueryResult {
        let schema = us_schema();
        let mut inst = us_instance();
        inst.annotate_elements(&schema).unwrap();
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        let q = parse_query(text).unwrap();
        Evaluator::new(&catalog, &funcs).run(&q).unwrap()
    }

    #[test]
    fn selection_with_condition() {
        let r = run("select h.hid from US.houses h where h.price > 500000");
        let mut hids: Vec<String> = r.tuples().into_iter().map(|t| t[0].to_string()).collect();
        hids.sort();
        assert_eq!(hids, ["H2", "H3"]);
    }

    #[test]
    fn join_on_aid() {
        let r = run("select h.hid, a.phone from US.houses h, US.agents a where h.aid = a.aid");
        assert_eq!(r.len(), 3);
        let t = r.tuples();
        assert!(t.contains(&vec![AtomicValue::str("H1"), AtomicValue::str("555-1111")]));
        assert!(t.contains(&vec![AtomicValue::str("H2"), AtomicValue::str("555-2222")]));
    }

    #[test]
    fn choice_binding_filters() {
        // Only agent a1 has a personal name.
        let r = run("select a.aid, n from US.agents a, a.title->name n");
        assert_eq!(r.len(), 1);
        assert_eq!(
            r.tuples()[0],
            vec![AtomicValue::str("a1"), AtomicValue::str("Smith")]
        );
        // Only agent a2 is a firm.
        let r = run("select f from US.agents a, a.title->firm f");
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0], vec![AtomicValue::str("HomeGain")]);
    }

    #[test]
    fn facts_carry_positions() {
        let r = run("select h.hid from US.houses h where h.hid = 'H1'");
        assert_eq!(r.len(), 1);
        assert!(r.rows[0][0].node.is_some());
    }

    #[test]
    fn elem_operator() {
        let r = run("select h.price@elem from US.houses h where h.hid = 'H1'");
        assert_eq!(r.len(), 1);
        match &r.rows[0][0].value {
            AtomicValue::Elem(e) => {
                assert_eq!(e.db, "USdb");
                assert_eq!(e.path, "/US/houses/price");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn map_operator_over_empty_annotations() {
        // No mapping annotations in a hand-built instance: @map yields no
        // bindings, so the result is empty (not an error).
        let r = run("select h.hid, m from US.houses h, h.price@map m");
        assert!(r.is_empty());
    }

    #[test]
    fn map_operator_with_annotations() {
        let schema = us_schema();
        let mut inst = us_instance();
        inst.annotate_elements(&schema).unwrap();
        // Annotate every price with a mapping.
        let price_elem = schema.resolve_path("/US/houses/price").unwrap();
        for n in inst.interpretation(price_elem) {
            inst.add_mapping(n, MappingName::new("m1"));
        }
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        let q = parse_query("select h.hid, m from US.houses h, h.price@map m").unwrap();
        let r = Evaluator::new(&catalog, &funcs).run(&q).unwrap();
        assert_eq!(r.len(), 3);
        assert!(matches!(&r.rows[0][1].value, AtomicValue::Map(m) if m.as_str() == "m1"));
    }

    #[test]
    fn constant_comparisons_and_ne() {
        let r = run("select h.hid from US.houses h where h.hid != 'H1'");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn cross_product_without_conditions() {
        let r = run("select h.hid, a.aid from US.houses h, US.agents a");
        assert_eq!(r.len(), 6);
    }

    #[test]
    fn pushdown_and_naive_agree() {
        let schema = us_schema();
        let mut inst = us_instance();
        inst.annotate_elements(&schema).unwrap();
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        let q = parse_query(
            "select h.hid, a.phone from US.houses h, US.agents a where h.aid = a.aid and h.price > 500000",
        )
        .unwrap();
        let fast = Evaluator::new(&catalog, &funcs).run(&q).unwrap();
        let naive = Evaluator::new(&catalog, &funcs)
            .with_options(EvalOptions {
                pushdown: false,
                hash_join: false,
                ..Default::default()
            })
            .run(&q)
            .unwrap();
        assert_eq!(fast.tuples(), naive.tuples());
    }

    #[test]
    fn hash_join_and_nested_loop_agree() {
        let schema = us_schema();
        let mut inst = us_instance();
        inst.annotate_elements(&schema).unwrap();
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        for text in [
            "select h.hid, a.phone from US.houses h, US.agents a where h.aid = a.aid",
            "select h.hid, a.phone from US.houses h, US.agents a where a.aid = h.aid and h.price > 500000",
            "select h.hid, g.hid from US.houses h, US.houses g where g.price = h.price",
        ] {
            let q = parse_query(text).unwrap();
            let hashed = Evaluator::new(&catalog, &funcs).run(&q).unwrap();
            let nested = Evaluator::new(&catalog, &funcs)
                .with_options(EvalOptions {
                    pushdown: true,
                    hash_join: false,
                    ..Default::default()
                })
                .run(&q)
                .unwrap();
            // Same rows in the same order: the probe visits candidates in
            // item order, exactly like the scan.
            assert_eq!(hashed.tuples(), nested.tuples(), "{text}");
            assert!(hashed.stats.hash_probes > 0, "{text}");
            assert_eq!(nested.stats.hash_probes, 0, "{text}");
            // The probe path visits no more candidates than the scan.
            assert!(
                hashed.stats.tuples_scanned <= nested.stats.tuples_scanned,
                "{text}"
            );
        }
    }

    #[test]
    fn hash_join_coerces_like_nested_loop() {
        // A join between a plain-string column and meta values must hit
        // the same matches through the hash table as through the scan.
        struct Stub;
        impl MetaEnv for Stub {
            fn triples(&self, double: bool) -> Vec<PredTriple> {
                if double {
                    return Vec::new();
                }
                vec![
                    PredTriple {
                        src: ElementRef::new("USdb", "/US/houses/price"),
                        mapping: MappingName::new("m1"),
                        tgt: ElementRef::new("Pdb", "/Portal/estates/value"),
                    },
                    PredTriple {
                        src: ElementRef::new("USdb", "/US/houses/hid"),
                        mapping: MappingName::new("m2"),
                        tgt: ElementRef::new("Pdb", "/Portal/estates/hid"),
                    },
                ]
            }
        }
        let schema = us_schema();
        let mut inst = us_instance();
        inst.annotate_elements(&schema).unwrap();
        let price_elem = schema.resolve_path("/US/houses/price").unwrap();
        for n in inst.interpretation(price_elem) {
            inst.add_mapping(n, MappingName::new("m1"));
        }
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        let q = parse_query(
            "select h.hid, m, e from US.houses h, h.price@map m
             where <db:e -> m -> 'Pdb':e2>",
        )
        .unwrap();
        let hashed = Evaluator::new(&catalog, &funcs)
            .with_meta(&Stub)
            .run(&q)
            .unwrap();
        let nested = Evaluator::new(&catalog, &funcs)
            .with_meta(&Stub)
            .with_options(EvalOptions {
                pushdown: true,
                hash_join: false,
                ..Default::default()
            })
            .run(&q)
            .unwrap();
        assert_eq!(hashed.tuples(), nested.tuples());
        assert_eq!(hashed.len(), 3);
        // The triple index pruned the m2 triple before unification.
        assert!(hashed.stats.predicate_triples_tested < nested.stats.predicate_triples_tested);
    }

    #[test]
    fn missing_meta_env_errors() {
        let schema = us_schema();
        let inst = us_instance();
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        let q = parse_query("select e from where <db:e -> m -> 'Pdb':e2>").unwrap();
        let err = Evaluator::new(&catalog, &funcs).run(&q).unwrap_err();
        assert_eq!(err, EvalError::NoMetaEnv);
    }

    #[test]
    fn mapping_predicate_with_stub_meta_env() {
        struct Stub;
        impl MetaEnv for Stub {
            fn triples(&self, double: bool) -> Vec<PredTriple> {
                if double {
                    return Vec::new();
                }
                vec![PredTriple {
                    src: ElementRef::new("USdb", "/US/houses/price"),
                    mapping: MappingName::new("m1"),
                    tgt: ElementRef::new("Pdb", "/Portal/estates/value"),
                }]
            }
        }
        let schema = us_schema();
        let inst = us_instance();
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        let q = parse_query("select e, m from where <db:e -> m -> 'Pdb':e2>").unwrap();
        let r = Evaluator::new(&catalog, &funcs)
            .with_meta(&Stub)
            .run(&q)
            .unwrap();
        assert_eq!(r.len(), 1);
        assert!(
            matches!(&r.rows[0][0].value, AtomicValue::Elem(e) if e.path == "/US/houses/price")
        );
        // Constants filter.
        let q2 = parse_query("select m from where <db:e -> m -> 'Elsewhere':e2>").unwrap();
        let r2 = Evaluator::new(&catalog, &funcs)
            .with_meta(&Stub)
            .run(&q2)
            .unwrap();
        assert!(r2.is_empty());
        // Element-path constants match canonically.
        let q3 = parse_query(
            "select m from where <db:'/US/houses/price' -> m -> 'Pdb':'Portal/estates/value'>",
        )
        .unwrap();
        let r3 = Evaluator::new(&catalog, &funcs)
            .with_meta(&Stub)
            .run(&q3)
            .unwrap();
        assert_eq!(r3.len(), 1);
    }

    #[test]
    fn static_item_prefilter_matches_naive() {
        // Regression for the constant-side static-item prefilter: a root
        // binding filtered by a constant condition must agree with the
        // naive evaluation, including when combined with row-dependent
        // conditions.
        let schema = us_schema();
        let mut inst = us_instance();
        inst.annotate_elements(&schema).unwrap();
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        let q = parse_query(
            "select h.hid, a.aid
             from US.houses h, US.agents a
             where a.aid = 'a1' and h.aid = a.aid",
        )
        .unwrap();
        let fast = Evaluator::new(&catalog, &funcs).run(&q).unwrap();
        let naive = Evaluator::new(&catalog, &funcs)
            .with_options(EvalOptions {
                pushdown: false,
                hash_join: false,
                ..Default::default()
            })
            .run(&q)
            .unwrap();
        assert_eq!(fast.tuples(), naive.tuples());
        assert_eq!(fast.len(), 2); // H1 and H3 belong to a1
    }

    #[test]
    fn hoisted_invariant_side_matches_naive() {
        // The invariant-side hoisting: `h.hid = a.aid`-style conditions
        // where one side does not mention the new binding variable.
        let schema = us_schema();
        let mut inst = us_instance();
        inst.annotate_elements(&schema).unwrap();
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        let q = parse_query(
            "select h.hid, a.phone
             from US.houses h, US.agents a
             where h.aid = a.aid and h.price > 500000",
        )
        .unwrap();
        let fast = Evaluator::new(&catalog, &funcs).run(&q).unwrap();
        let naive = Evaluator::new(&catalog, &funcs)
            .with_options(EvalOptions {
                pushdown: false,
                hash_join: false,
                ..Default::default()
            })
            .run(&q)
            .unwrap();
        let sorted = |r: &QueryResult| {
            let mut t: Vec<String> = r.tuples().iter().map(|row| format!("{row:?}")).collect();
            t.sort();
            t
        };
        assert_eq!(sorted(&fast), sorted(&naive));
    }

    #[test]
    fn ne_on_incomparable_types_is_true() {
        let r = run("select h.hid from US.houses h where h.price != 'text'");
        // Int vs Str: incomparable, so != holds for every house.
        assert_eq!(r.len(), 3);
        // And = fails for every house.
        let r = run("select h.hid from US.houses h where h.price = 'text'");
        assert!(r.is_empty());
    }

    #[test]
    fn ordering_on_incomparable_types_errors() {
        let schema = us_schema();
        let mut inst = us_instance();
        inst.annotate_elements(&schema).unwrap();
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        let q = parse_query("select h.hid from US.houses h where h.price < 'text'").unwrap();
        assert!(matches!(
            Evaluator::new(&catalog, &funcs).run(&q),
            Err(EvalError::Incomparable(_))
        ));
    }

    #[test]
    fn predicate_with_prebound_mapping_variable() {
        // The mapping variable is bound by @map before the predicate runs;
        // the predicate filters rather than generates.
        struct Stub;
        impl MetaEnv for Stub {
            fn triples(&self, double: bool) -> Vec<PredTriple> {
                if double {
                    return Vec::new();
                }
                vec![
                    PredTriple {
                        src: ElementRef::new("USdb", "/US/houses/price"),
                        mapping: MappingName::new("m1"),
                        tgt: ElementRef::new("Pdb", "/Portal/estates/value"),
                    },
                    PredTriple {
                        src: ElementRef::new("USdb", "/US/houses/hid"),
                        mapping: MappingName::new("m9"),
                        tgt: ElementRef::new("Pdb", "/Portal/estates/hid"),
                    },
                ]
            }
        }
        let schema = us_schema();
        let mut inst = us_instance();
        inst.annotate_elements(&schema).unwrap();
        let price_elem = schema.resolve_path("/US/houses/price").unwrap();
        for n in inst.interpretation(price_elem) {
            inst.add_mapping(n, MappingName::new("m1"));
        }
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        // m ranges over {m1} per row; the predicate's m9 triple must not
        // leak in.
        let q = parse_query(
            "select h.hid, m, e from US.houses h, h.price@map m
             where <db:e -> m -> 'Pdb':e2>",
        )
        .unwrap();
        let r = Evaluator::new(&catalog, &funcs)
            .with_meta(&Stub)
            .run(&q)
            .unwrap();
        assert_eq!(r.len(), 3);
        for row in r.tuples() {
            assert_eq!(row[1].to_string(), "m1");
            assert_eq!(row[2].to_string(), "USdb:/US/houses/price");
        }
    }

    #[test]
    fn order_by_sorts_and_limit_truncates() {
        let r = run("select h.hid, h.price from US.houses h order by h.price desc");
        let prices: Vec<i64> = r.tuples().iter().map(|t| t[1].as_int().unwrap()).collect();
        assert_eq!(prices, vec![820_000, 750_000, 450_000]);
        let r = run("select h.hid from US.houses h order by h.hid limit 2");
        assert_eq!(
            r.tuples()
                .iter()
                .map(|t| t[0].to_string())
                .collect::<Vec<_>>(),
            vec!["H1", "H2"]
        );
        // Order keys need not be selected.
        let r = run("select h.hid from US.houses h order by h.price");
        assert_eq!(r.tuples()[0][0].to_string(), "H1");
        // Limit alone, without ordering.
        let r = run("select h.hid from US.houses h limit 1");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn table_rendering() {
        let r = run("select h.hid, h.price from US.houses h where h.hid = 'H1'");
        let table = r.to_table();
        assert!(table.contains("h.hid"));
        assert!(table.contains("H1"));
        assert!(table.contains("450000"));
    }

    #[test]
    fn select_complex_errors() {
        let schema = us_schema();
        let inst = us_instance();
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        let q = parse_query("select h from US.houses h").unwrap();
        assert!(Evaluator::new(&catalog, &funcs).run(&q).is_err());
    }

    #[test]
    fn analyzed_run_is_byte_identical_and_builds_operator_tree() {
        let schema = us_schema();
        let mut inst = us_instance();
        inst.annotate_elements(&schema).unwrap();
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        // A 3-way join with a sort and a limit exercises every query-side
        // operator kind at once.
        let text = "select h.hid, a.phone, g.hid from US.houses h, US.agents a, US.houses g \
                    where h.aid = a.aid and g.price = h.price order by h.hid limit 10";
        let q = parse_query(text).unwrap();
        let ev = Evaluator::new(&catalog, &funcs);
        let plain = ev.run(&q).unwrap();
        let (analyzed, plan) = ev.run_analyzed(&q).unwrap();
        // Instrumentation is read-only: identical columns and rows
        // (values AND fact positions), in identical order.
        assert_eq!(plain.columns, analyzed.columns);
        assert_eq!(plain.rows, analyzed.rows);
        // The root operator's output is the result cardinality.
        assert_eq!(plan.rows_out, analyzed.rows.len() as u64);
        assert_eq!(plan.op, "limit");
        for op in ["scan", "hash-build", "hash-probe", "project", "sort"] {
            assert!(plan.find(op).is_some(), "missing operator {op}");
        }
        // Both equi-joins ran as hash joins over the static sources.
        let probe = plan.find("hash-probe").unwrap();
        assert!(probe.rows_in > 0);
        // The projection charges the guard meter per emitted row.
        assert!(plan.find("project").unwrap().guard_charges > 0);
        let rendered = plan.render();
        assert!(rendered.contains("EXPLAIN ANALYZE"));
        assert!(rendered.contains("hash-probe"));
    }

    #[test]
    fn analyzed_run_does_not_clobber_the_process_global() {
        // `run_analyzed` returns the plan; it must NOT publish to the
        // `dtr_obs::analyze` process-global (two concurrent sessions would
        // overwrite each other's tree). Publishing is the REPL's explicit
        // choice. No other test in this binary publishes.
        dtr_obs::analyze::reset_last();
        let schema = us_schema();
        let mut inst = us_instance();
        inst.annotate_elements(&schema).unwrap();
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        let q = parse_query("select h.hid from US.houses h").unwrap();
        let (_, plan) = Evaluator::new(&catalog, &funcs).run_analyzed(&q).unwrap();
        assert_eq!(plan.rows_out, 3);
        assert!(dtr_obs::analyze::last().is_none());
    }

    #[test]
    fn concurrent_analyzed_runs_each_get_their_own_plan() {
        // Regression for the set_last clobbering bug: two threads running
        // analyzed queries concurrently must each observe a plan that
        // matches *their* query, not the other session's.
        let schema = us_schema();
        let mut inst = us_instance();
        inst.annotate_elements(&schema).unwrap();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (text, expected_rows) in [
                ("select h.hid from US.houses h", 3u64),
                ("select a.phone from US.agents a where a.aid = 'a2'", 1u64),
            ] {
                let schema = &schema;
                let inst = &inst;
                handles.push(scope.spawn(move || {
                    let catalog = Catalog::new(vec![Source {
                        schema,
                        instance: inst,
                    }]);
                    let funcs = FunctionRegistry::with_builtins();
                    let ev = Evaluator::new(&catalog, &funcs);
                    let q = parse_query(text).unwrap();
                    for _ in 0..50 {
                        let (result, plan) = ev.run_analyzed(&q).unwrap();
                        assert_eq!(result.rows.len() as u64, expected_rows);
                        assert_eq!(plan.rows_out, expected_rows, "foreign plan observed");
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        });
    }

    #[test]
    fn all_four_flag_pairs_agree_with_the_naive_oracle() {
        // Regression for the `pushdown: false, hash_join: true`
        // interaction: hash_join without pushdown is contradictory (no
        // ready comparisons to join on) and is canonicalized away, so all
        // four combinations are valid engine modes with one result.
        let schema = us_schema();
        let mut inst = us_instance();
        inst.annotate_elements(&schema).unwrap();
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        let q = parse_query(
            "select h.hid, a.phone from US.houses h, US.agents a \
             where h.aid = a.aid and h.price > 500000",
        )
        .unwrap();
        let baseline = Evaluator::new(&catalog, &funcs).run(&q).unwrap();
        assert_eq!(baseline.rows.len(), 2);
        let canonical = |r: &QueryResult| {
            let mut rows: Vec<String> = r.rows.iter().map(|row| format!("{row:?}")).collect();
            rows.sort();
            rows
        };
        for (pushdown, hash_join) in [(false, false), (false, true), (true, false), (true, true)] {
            let opts = EvalOptions {
                pushdown,
                hash_join,
                ..Default::default()
            };
            // The canonical form never keeps hash_join without pushdown.
            assert_eq!(opts.clone().canonical().hash_join, pushdown && hash_join);
            let r = Evaluator::new(&catalog, &funcs)
                .with_options(opts)
                .run(&q)
                .unwrap();
            assert_eq!(
                canonical(&r),
                canonical(&baseline),
                "mode pushdown={pushdown} hash_join={hash_join} disagrees"
            );
        }
    }

    #[test]
    fn per_binding_override_forces_nested_loop_with_identical_rows() {
        let schema = us_schema();
        let mut inst = us_instance();
        inst.annotate_elements(&schema).unwrap();
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        let q =
            parse_query("select h.hid, a.phone from US.houses h, US.agents a where h.aid = a.aid")
                .unwrap();
        let hashed = Evaluator::new(&catalog, &funcs).run(&q).unwrap();
        let (_, forced_plan) = Evaluator::new(&catalog, &funcs)
            .with_options(EvalOptions {
                hash_join_per_binding: Some(std::sync::Arc::new(vec![true, false])),
                ..Default::default()
            })
            .run_analyzed(&q)
            .unwrap();
        // The override suppressed the hash table on binding 1 (the only
        // join candidate), so no probe/build operator exists...
        assert!(forced_plan.find("hash-probe").is_none());
        assert!(forced_plan.find("hash-build").is_none());
        // ...and the rows (probed in candidate order by construction)
        // still match the hash-join rows exactly.
        let forced = Evaluator::new(&catalog, &funcs)
            .with_options(EvalOptions {
                hash_join_per_binding: Some(std::sync::Arc::new(vec![true, false])),
                ..Default::default()
            })
            .run(&q)
            .unwrap();
        assert_eq!(forced.rows, hashed.rows);
    }

    #[test]
    fn analyzed_run_without_joins_matches_plain() {
        let schema = us_schema();
        let mut inst = us_instance();
        inst.annotate_elements(&schema).unwrap();
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        let q = parse_query("select h.hid from US.houses h where h.price > 500000").unwrap();
        let ev = Evaluator::new(&catalog, &funcs);
        let plain = ev.run(&q).unwrap();
        let (analyzed, plan) = ev.run_analyzed(&q).unwrap();
        assert_eq!(plain.rows, analyzed.rows);
        assert_eq!(plan.op, "project");
        assert_eq!(plan.rows_out, 2);
        let scan = plan.find("scan").unwrap();
        assert_eq!(scan.rows_out, 2);
    }

    #[test]
    fn stats_catalog_records_scans_and_joins() {
        dtr_obs::stats::set_enabled(true);
        let r = run("select h.hid, a.phone from US.houses h, US.agents a where h.aid = a.aid");
        dtr_obs::stats::set_enabled(false);
        assert_eq!(r.len(), 3);
        let cat = dtr_obs::stats::snapshot();
        // Other tests may run concurrently while the gate is open, so
        // assert lower bounds, not exact counts.
        let houses = cat.paths.get("US.houses").expect("US.houses scanned");
        assert!(houses.sets >= 1);
        let join = cat
            .joins
            .get("US.agents.aid = US.houses.aid")
            .expect("join key canonicalized through the from-chain");
        assert!(join.build_rows >= 2);
        assert!(join.matches >= 3);
        assert!(join.selectivity().is_some());
    }

    use dtr_model::value::MappingName;
}
