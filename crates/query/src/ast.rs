//! Abstract syntax of the query language (Section 4.2) and its MXQL
//! extensions (Section 5).
//!
//! The grammar of path expressions is exactly the paper's:
//! `exp ::= S | x | exp.l | exp→l` — a schema root or variable followed by
//! record projections and union choices. MXQL adds the postfix operators
//! `@elem` and `@map` and the boolean *mapping predicates*
//! `<db:e→m→db':e'>` (single arrow) and `<db:e⇒m⇒db':e'>` (double arrow).

use dtr_model::label::Label;
use dtr_model::value::AtomicValue;
use std::fmt;

/// A variable name bound in a `from` clause (or implicitly by a mapping
/// predicate, as in Example 5.6).
pub type Var = String;

/// Where a path expression starts: a schema root element or a variable.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum PathStart {
    /// A schema root, e.g. `US` in `US.houses`.
    Root(Label),
    /// A query variable, e.g. `h` in `h.price`.
    Var(Var),
}

/// One navigation step of a path expression.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Step {
    /// Record projection `exp.l`.
    Project(Label),
    /// Union choice `exp→l`: selects the alternative `l`, filtering values
    /// whose choice selected a different alternative.
    Choice(Label),
}

/// A path expression: a start followed by projection/choice steps.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PathExpr {
    /// Start symbol.
    pub start: PathStart,
    /// Navigation steps, outermost first.
    pub steps: Vec<Step>,
}

impl PathExpr {
    /// A bare variable reference.
    pub fn var(v: impl Into<Var>) -> PathExpr {
        PathExpr {
            start: PathStart::Var(v.into()),
            steps: Vec::new(),
        }
    }

    /// A bare schema-root reference.
    pub fn root(r: impl Into<Label>) -> PathExpr {
        PathExpr {
            start: PathStart::Root(r.into()),
            steps: Vec::new(),
        }
    }

    /// Appends a record projection.
    pub fn project(mut self, l: impl Into<Label>) -> PathExpr {
        self.steps.push(Step::Project(l.into()));
        self
    }

    /// Appends a union choice.
    pub fn choice(mut self, l: impl Into<Label>) -> PathExpr {
        self.steps.push(Step::Choice(l.into()));
        self
    }

    /// The variable this path starts from, if any.
    pub fn start_var(&self) -> Option<&str> {
        match &self.start {
            PathStart::Var(v) => Some(v),
            PathStart::Root(_) => None,
        }
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.start {
            PathStart::Root(r) => write!(f, "{r}")?,
            PathStart::Var(v) => write!(f, "{v}")?,
        }
        for s in &self.steps {
            match s {
                Step::Project(l) => write!(f, ".{l}")?,
                Step::Choice(l) => write!(f, "->{l}")?,
            }
        }
        Ok(())
    }
}

/// An expression: the operands of select items, bindings and comparisons.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A path expression.
    Path(PathExpr),
    /// An atomic constant.
    Const(AtomicValue),
    /// `exp@elem` — the schema element of the value (Section 5). Returns a
    /// single value of type `Element`.
    ElemOf(PathExpr),
    /// `exp@map` — the set of mappings that generated the value (Section
    /// 5). Set-valued; usable as a `from`-clause binding source.
    MapOf(PathExpr),
    /// A function call (Section 4.2 allows function calls returning a value
    /// or a set of values).
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Shorthand for a path expression.
    pub fn path(p: PathExpr) -> Expr {
        Expr::Path(p)
    }

    /// The variables referenced by this expression.
    pub fn variables(&self) -> Vec<&str> {
        match self {
            Expr::Path(p) | Expr::ElemOf(p) | Expr::MapOf(p) => p.start_var().into_iter().collect(),
            Expr::Const(_) => Vec::new(),
            Expr::Call(_, args) => args.iter().flat_map(|a| a.variables()).collect(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Path(p) => write!(f, "{p}"),
            Expr::Const(c) => write!(f, "{}", c.display_quoted()),
            Expr::ElemOf(p) => write!(f, "{p}@elem"),
            Expr::MapOf(p) => write!(f, "{p}@map"),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// A `from`-clause binding `P x`: variable `x` ranges over the items
/// produced by the source expression `P` (a set, a union choice, an `@map`,
/// or a set-valued function call).
#[derive(Clone, Debug, PartialEq)]
pub struct Binding {
    /// The bound variable.
    pub var: Var,
    /// The source expression.
    pub source: Expr,
}

impl fmt::Display for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.source, self.var)
    }
}

/// Comparison operators of the `where` clause. The paper lists `<`, `>`,
/// `≤`, `≥`, `=`; `≠` is a convenience extension.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` (extension)
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Textual spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Applies the operator to an [`std::cmp::Ordering`].
    pub fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A binary comparison condition `expr θ expr`.
#[derive(Clone, Debug, PartialEq)]
pub struct Comparison {
    /// Left operand.
    pub left: Expr,
    /// Operator.
    pub op: CmpOp,
    /// Right operand.
    pub right: Expr,
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// A term of a mapping predicate: a variable (possibly implicitly declared
/// by its position in the predicate) or a constant.
#[derive(Clone, Debug, PartialEq)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A constant (a database name or an element path).
    Const(AtomicValue),
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{}", c.display_quoted()),
        }
    }
}

/// The MXQL mapping predicate (Section 5).
///
/// * Single arrow `<db:es → m → db':et>`: mapping `m` copies values of the
///   source element `es` into the target element `et` — schema-level
///   **where-provenance** (Theorem 6.1).
/// * Double arrow `<db:es ⇒ m ⇒ db':et>`: mapping `m` populates `et` and
///   references `es` in the select or where clause of its `foreach` query —
///   schema-level **what-provenance** (Theorem 6.4).
#[derive(Clone, Debug, PartialEq)]
pub struct MappingPred {
    /// Source database term.
    pub src_db: Term,
    /// Source element term.
    pub src_elem: Term,
    /// Mapping term.
    pub mapping: Term,
    /// Target database term.
    pub tgt_db: Term,
    /// Target element term.
    pub tgt_elem: Term,
    /// `true` for the double-arrow (what-provenance) form.
    pub double: bool,
}

impl MappingPred {
    /// All variable names used by the predicate.
    pub fn variables(&self) -> Vec<&str> {
        [
            &self.src_db,
            &self.src_elem,
            &self.mapping,
            &self.tgt_db,
            &self.tgt_elem,
        ]
        .into_iter()
        .filter_map(|t| match t {
            Term::Var(v) => Some(v.as_str()),
            Term::Const(_) => None,
        })
        .collect()
    }
}

impl fmt::Display for MappingPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let arrow = if self.double { "=>" } else { "->" };
        write!(
            f,
            "<{}:{} {arrow} {} {arrow} {}:{}>",
            self.src_db, self.src_elem, self.mapping, self.tgt_db, self.tgt_elem
        )
    }
}

/// A `where`-clause condition.
#[derive(Clone, Debug, PartialEq)]
pub enum Condition {
    /// A binary comparison.
    Cmp(Comparison),
    /// A mapping predicate (MXQL).
    MapPred(MappingPred),
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Cmp(c) => write!(f, "{c}"),
            Condition::MapPred(p) => write!(f, "{p}"),
        }
    }
}

/// A sort key of the (extension) `order by` clause.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderKey {
    /// The expression to sort by (atomic-typed).
    pub expr: Expr,
    /// Sort descending.
    pub descending: bool,
}

impl fmt::Display for OrderKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        if self.descending {
            f.write_str(" desc")?;
        }
        Ok(())
    }
}

/// A select-from-where query (Section 4.2).
///
/// The optional `order by` / `limit` tail is an extension the paper
/// explicitly permits ("the query language ... can also be extended to
/// include aggregation functions, negation and order"); only ordering and
/// limiting are implemented, as pure post-processing of the result set.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Query {
    /// Select-clause expressions (atomic-typed).
    pub select: Vec<Expr>,
    /// From-clause bindings, in dependency order.
    pub from: Vec<Binding>,
    /// Where-clause conditions, conjunctively combined.
    pub conditions: Vec<Condition>,
    /// Optional sort keys (extension).
    pub order_by: Vec<OrderKey>,
    /// Optional row limit (extension).
    pub limit: Option<usize>,
}

impl Query {
    /// True if any select item or condition uses an MXQL construct
    /// (`@elem`, `@map`, or a mapping predicate).
    pub fn is_mxql(&self) -> bool {
        fn expr_is_meta(e: &Expr) -> bool {
            match e {
                Expr::ElemOf(_) | Expr::MapOf(_) => true,
                Expr::Call(_, args) => args.iter().any(expr_is_meta),
                _ => false,
            }
        }
        self.select.iter().any(expr_is_meta)
            || self.from.iter().any(|b| expr_is_meta(&b.source))
            || self.conditions.iter().any(|c| match c {
                Condition::MapPred(_) => true,
                Condition::Cmp(cmp) => expr_is_meta(&cmp.left) || expr_is_meta(&cmp.right),
            })
    }

    /// The variables declared by the `from` clause, in order.
    pub fn declared_vars(&self) -> Vec<&str> {
        self.from.iter().map(|b| b.var.as_str()).collect()
    }

    /// Variables used anywhere but not declared in the `from` clause —
    /// these are the *implicitly defined* variables of mapping predicates
    /// ("variables used in the mapping predicate need not be defined in the
    /// from clause", Section 5).
    pub fn implicit_vars(&self) -> Vec<&str> {
        let declared = self.declared_vars();
        let mut out: Vec<&str> = Vec::new();
        fn add<'a>(vs: Vec<&'a str>, declared: &[&str], out: &mut Vec<&'a str>) {
            for v in vs {
                if !declared.contains(&v) && !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        for e in &self.select {
            add(e.variables(), &declared, &mut out);
        }
        for c in &self.conditions {
            match c {
                Condition::Cmp(cmp) => {
                    add(cmp.left.variables(), &declared, &mut out);
                    add(cmp.right.variables(), &declared, &mut out);
                }
                Condition::MapPred(p) => add(p.variables(), &declared, &mut out),
            }
        }
        out
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("select ")?;
        for (i, e) in self.select.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{e}")?;
        }
        f.write_str("\nfrom ")?;
        for (i, b) in self.from.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{b}")?;
        }
        if !self.conditions.is_empty() {
            f.write_str("\nwhere ")?;
            for (i, c) in self.conditions.iter().enumerate() {
                if i > 0 {
                    f.write_str(" and ")?;
                }
                write!(f, "{c}")?;
            }
        }
        if !self.order_by.is_empty() {
            f.write_str("\norder by ")?;
            for (i, k) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{k}")?;
            }
        }
        if let Some(n) = self.limit {
            write!(f, "\nlimit {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_query() -> Query {
        // select h.hid, n from US.houses h, a.title->name n where h.aid = a.aid
        Query {
            select: vec![
                Expr::Path(PathExpr::var("h").project("hid")),
                Expr::Path(PathExpr::var("n")),
            ],
            from: vec![
                Binding {
                    var: "h".into(),
                    source: Expr::Path(PathExpr::root("US").project("houses")),
                },
                Binding {
                    var: "n".into(),
                    source: Expr::Path(PathExpr::var("a").project("title").choice("name")),
                },
            ],
            conditions: vec![Condition::Cmp(Comparison {
                left: Expr::Path(PathExpr::var("h").project("aid")),
                op: CmpOp::Eq,
                right: Expr::Path(PathExpr::var("a").project("aid")),
            })],
            ..Default::default()
        }
    }

    #[test]
    fn display_round_trips_visually() {
        let q = sample_query();
        let s = q.to_string();
        assert!(s.contains("select h.hid, n"));
        assert!(s.contains("from US.houses h, a.title->name n"));
        assert!(s.contains("where h.aid = a.aid"));
    }

    #[test]
    fn variables_of_expressions() {
        let e = Expr::Path(PathExpr::var("h").project("hid"));
        assert_eq!(e.variables(), ["h"]);
        let c = Expr::Call(
            "f".into(),
            vec![e.clone(), Expr::Const(AtomicValue::Int(1))],
        );
        assert_eq!(c.variables(), ["h"]);
        assert!(Expr::Const(AtomicValue::Int(1)).variables().is_empty());
    }

    #[test]
    fn mxql_detection() {
        let mut q = sample_query();
        assert!(!q.is_mxql());
        q.select
            .push(Expr::MapOf(PathExpr::var("h").project("price")));
        assert!(q.is_mxql());

        let mut q2 = sample_query();
        q2.conditions.push(Condition::MapPred(MappingPred {
            src_db: Term::Var("db".into()),
            src_elem: Term::Var("e".into()),
            mapping: Term::Var("m".into()),
            tgt_db: Term::Const(AtomicValue::Db("Pdb".into())),
            tgt_elem: Term::Var("e2".into()),
            double: false,
        }));
        assert!(q2.is_mxql());
    }

    #[test]
    fn implicit_vars_found() {
        // Example 5.6: select e from where <db:e->m->'Pdb':'/Portal/...'>
        let q = Query {
            select: vec![Expr::Path(PathExpr::var("e"))],
            from: vec![],
            conditions: vec![Condition::MapPred(MappingPred {
                src_db: Term::Var("db".into()),
                src_elem: Term::Var("e".into()),
                mapping: Term::Var("m".into()),
                tgt_db: Term::Const(AtomicValue::Db("Pdb".into())),
                tgt_elem: Term::Const(AtomicValue::str("/Portal/estates/stories")),
                double: false,
            })],
            ..Default::default()
        };
        let implicit = q.implicit_vars();
        assert!(implicit.contains(&"e"));
        assert!(implicit.contains(&"db"));
        assert!(implicit.contains(&"m"));
        assert_eq!(implicit.len(), 3);
    }

    #[test]
    fn cmp_op_semantics() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.test(Equal));
        assert!(!CmpOp::Eq.test(Less));
        assert!(CmpOp::Ne.test(Less));
        assert!(CmpOp::Le.test(Equal));
        assert!(CmpOp::Ge.test(Greater));
        assert!(!CmpOp::Lt.test(Greater));
    }

    #[test]
    fn mapping_pred_display() {
        let p = MappingPred {
            src_db: Term::Const(AtomicValue::Db("USdb".into())),
            src_elem: Term::Const(AtomicValue::str("/US/agents/title/firm")),
            mapping: Term::Var("m".into()),
            tgt_db: Term::Const(AtomicValue::Db("Pdb".into())),
            tgt_elem: Term::Var("e".into()),
            double: false,
        };
        assert_eq!(
            p.to_string(),
            "<'USdb':'/US/agents/title/firm' -> m -> 'Pdb':e>"
        );
        let d = MappingPred { double: true, ..p };
        assert!(d.to_string().contains("=>"));
    }
}
