//! Compiled query plans and the plan cache.
//!
//! [`compile`] drives the full planner pipeline — resolve (static
//! checking), logical plan construction, rewrite passes (predicate
//! pushdown, equality-join extraction), and physical planning (cost-based
//! join ordering and algorithm choice from a [`StatsCatalog`] snapshot) —
//! producing a [`CompiledPlan`] that executes through the existing
//! evaluator kernels via its derived [`EvalOptions`], so guards, stats,
//! the journal, `.analyze` and incremental `domains` pinning all keep
//! working unchanged.
//!
//! [`PlanCache`] stores compiled plans keyed by the FNV-1a fingerprint of
//! the *raw query text* (computed before parsing, so a cache hit skips
//! parse + check + plan entirely). A 64-bit fingerprint is not an
//! identity: every hit is **structurally confirmed** by comparing the
//! stored query text, the same lesson the PR 4 `collision_split` fix
//! applied to PNF merging. Colliding texts coexist in one bucket and a
//! collision counter records the event.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dtr_model::schema::Schema;
use dtr_obs::stats::{fnv1a, StatsCatalog};

use crate::ast::Query;
use crate::check::{check_query, CheckError, SchemaCatalog};
use crate::eval::EvalOptions;
use crate::logical::LogicalPlan;
use crate::physical::{apply_order, choose_order, PhysicalPlan};

/// A fully planned query, ready to execute (and re-execute) without
/// re-parsing or re-planning.
#[derive(Clone, Debug)]
pub struct CompiledPlan {
    /// FNV-1a fingerprint of `text` — the cache key.
    pub fingerprint: u64,
    /// The raw query text the plan was compiled from. Stored verbatim so
    /// cache hits can structurally confirm the key (fingerprints are not
    /// identities).
    pub text: String,
    /// The executed query: normalized, with bindings in the planned order.
    pub query: Query,
    /// The rewritten logical plan (for display).
    pub logical: LogicalPlan,
    /// The cost-annotated physical plan (for display and options).
    pub physical: PhysicalPlan,
    /// Evaluator options derived from the physical plan (canonicalized
    /// flags plus per-binding join-algorithm overrides).
    pub opts: EvalOptions,
    /// The [`dtr_obs::stats::cardinality_version`] this plan was costed
    /// against. A cached plan whose version is stale (a delta/rebase moved
    /// the relation cardinalities since) is evicted on lookup instead of
    /// being reused with a possibly wrong join order.
    pub stats_version: u64,
}

impl CompiledPlan {
    /// The logical and physical plan, rendered for `.explain`.
    pub fn render(&self) -> String {
        format!("{}{}", self.logical.render(), self.physical.render(None))
    }

    /// [`CompiledPlan::render`] with actual per-stage output rows from an
    /// analyzed execution of this plan, paired stage-by-stage with the
    /// estimates. The analyzed operator chain can be shorter than the
    /// plan (the evaluator stops early when a stage yields zero rows);
    /// unmatched stages show `-`.
    pub fn render_with_actual(&self, analyzed: &dtr_obs::OpNode) -> String {
        // The operator tree is a spine through `children[0]` (hash builds
        // hang off as second children) with the *last* stage at the root.
        let mut chain: Vec<u64> = Vec::new();
        let mut node = Some(analyzed);
        while let Some(n) = node {
            chain.push(n.rows_out);
            node = n.children.first();
        }
        chain.reverse();
        let mut actual: Vec<Option<u64>> = vec![None; self.physical.stages.len()];
        for (slot, rows) in actual.iter_mut().zip(chain) {
            *slot = Some(rows);
        }
        format!(
            "{}{}",
            self.logical.render(),
            self.physical.render(Some(&actual))
        )
    }
}

/// Compiles `q` (already normalized by the caller) against `schemas` and
/// a statistics snapshot. `text` is the raw query text the fingerprint
/// and cache confirmation use; `opts` seeds the derived evaluator options
/// (flags are canonicalized, and when pushdown is off the rewrite passes
/// are skipped so the plan mirrors naive evaluation).
pub fn compile(
    q: &Query,
    schemas: Vec<&Schema>,
    stats: &StatsCatalog,
    text: &str,
    opts: EvalOptions,
) -> Result<CompiledPlan, CheckError> {
    check_query(q, SchemaCatalog::new(schemas))?;
    let opts = opts.canonical();
    let order = if opts.pushdown {
        choose_order(q, stats)
    } else {
        (0..q.from.len()).collect()
    };
    let query = apply_order(q, &order);
    let logical = if opts.pushdown {
        LogicalPlan::optimized(&query)
    } else {
        LogicalPlan::from_query(&query)
    };
    let physical = PhysicalPlan::from_logical(&query, &logical, stats, order);
    let mut opts = opts;
    if opts.hash_join {
        opts.hash_join_per_binding = Some(Arc::new(physical.hash_join_overrides(query.from.len())));
    }
    Ok(CompiledPlan {
        fingerprint: fnv1a(text.as_bytes()),
        text: text.to_string(),
        query,
        logical,
        physical,
        opts,
        stats_version: dtr_obs::stats::cardinality_version(),
    })
}

/// Counters and size of a [`PlanCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Confirmed hits (fingerprint matched *and* text matched).
    pub hits: u64,
    /// Lookups that found no usable plan.
    pub misses: u64,
    /// Lookups whose fingerprint matched a bucket but whose text did not
    /// match any entry — a real 64-bit collision, survived by
    /// structural confirmation.
    pub collisions: u64,
    /// Plans evicted because their stats version went stale (a delta or
    /// rebase changed relation cardinalities after they were compiled).
    pub evictions: u64,
    /// Number of cached plans.
    pub entries: usize,
}

/// A concurrent cache of [`CompiledPlan`]s keyed by query-text
/// fingerprint, with structural confirmation on every hit.
#[derive(Debug, Default)]
pub struct PlanCache {
    inner: Mutex<HashMap<u64, Vec<Arc<CompiledPlan>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    collisions: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The cache key of a query text.
    pub fn key(text: &str) -> u64 {
        fnv1a(text.as_bytes())
    }

    /// Looks up the plan compiled from exactly `text`.
    pub fn lookup(&self, text: &str) -> Option<Arc<CompiledPlan>> {
        self.lookup_keyed(Self::key(text), text)
    }

    /// [`PlanCache::lookup`] under an explicit key — the seam the
    /// forced-collision tests use. A fingerprint match alone is never
    /// returned: the stored text must be byte-equal, and its stats
    /// version must be current (a plan ordered for a pre-delta catalog is
    /// evicted here, never reused).
    pub fn lookup_keyed(&self, key: u64, text: &str) -> Option<Arc<CompiledPlan>> {
        let current = dtr_obs::stats::cardinality_version();
        let mut guard = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(bucket) = guard.get_mut(&key) {
            if let Some(pos) = bucket.iter().position(|p| p.text == text) {
                if bucket[pos].stats_version == current {
                    let plan = Arc::clone(&bucket[pos]);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(plan);
                }
                bucket.remove(pos);
                if bucket.is_empty() {
                    guard.remove(&key);
                }
                self.evictions.fetch_add(1, Ordering::Relaxed);
            } else if !bucket.is_empty() {
                self.collisions.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Caches `plan` under its own fingerprint.
    pub fn insert(&self, plan: Arc<CompiledPlan>) {
        let key = plan.fingerprint;
        self.insert_keyed(key, plan);
    }

    /// [`PlanCache::insert`] under an explicit key — the seam the
    /// forced-collision tests use. Colliding texts coexist in the
    /// bucket; re-inserting the same text replaces its entry.
    pub fn insert_keyed(&self, key: u64, plan: Arc<CompiledPlan>) {
        let mut guard = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let bucket = guard.entry(key).or_default();
        match bucket.iter_mut().find(|p| p.text == plan.text) {
            Some(slot) => *slot = plan,
            None => bucket.push(plan),
        }
    }

    /// Drops every cached plan (counters survive). Benchmarks use this
    /// to measure cold-plan cost.
    pub fn clear(&self) {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).clear();
    }

    /// Current counters and entry count.
    pub fn stats(&self) -> PlanCacheStats {
        let entries = self
            .inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .values()
            .map(Vec::len)
            .sum();
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            collisions: self.collisions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    /// Serializes the tests that depend on the process-global cardinality
    /// version staying still between an insert and its lookup.
    static VERSION_LOCK: Mutex<()> = Mutex::new(());

    fn dummy_plan(text: &str) -> Arc<CompiledPlan> {
        let q = parse_query(text).unwrap();
        let logical = LogicalPlan::from_query(&q);
        let stats = StatsCatalog::new();
        let physical =
            PhysicalPlan::from_logical(&q, &logical, &stats, (0..q.from.len()).collect());
        Arc::new(CompiledPlan {
            fingerprint: fnv1a(text.as_bytes()),
            text: text.to_string(),
            query: q,
            logical,
            physical,
            opts: EvalOptions::default(),
            stats_version: dtr_obs::stats::cardinality_version(),
        })
    }

    #[test]
    fn stale_stats_version_is_evicted_not_reused() {
        let _guard = VERSION_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let cache = PlanCache::new();
        let a = dummy_plan("select h.hid from US.houses h");
        cache.insert(Arc::clone(&a));
        assert!(cache.lookup(&a.text).is_some());
        // A delta apply/rebase moves the cardinality version: the cached
        // plan was ordered for the old catalog and must not be reused.
        dtr_obs::stats::bump_cardinality_version();
        assert!(cache.lookup(&a.text).is_none());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 0, "the stale entry is gone, not resurrected");
        // Re-inserting a freshly compiled plan works again.
        cache.insert(dummy_plan(&a.text));
        assert!(cache.lookup(&a.text).is_some());
    }

    #[test]
    fn cache_hit_requires_structural_confirmation() {
        let _guard = VERSION_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let cache = PlanCache::new();
        let a = dummy_plan("select h.hid from US.houses h");
        cache.insert(Arc::clone(&a));
        assert!(cache.lookup("select h.hid from US.houses h").is_some());
        assert!(cache.lookup("select a.aid from US.agents a").is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        // Distinct texts hash to distinct buckets here, so no collision.
        assert_eq!(s.collisions, 0);
    }

    #[test]
    fn forced_fingerprint_collision_is_detected_not_conflated() {
        let _guard = VERSION_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let cache = PlanCache::new();
        let a = dummy_plan("select h.hid from US.houses h");
        let b = dummy_plan("select a.aid from US.agents a");
        let key = 0xdead_beefu64;
        // Force both texts under one key — a synthetic 64-bit collision.
        cache.insert_keyed(key, Arc::clone(&a));
        cache.insert_keyed(key, Arc::clone(&b));

        // Each text gets back exactly its own plan, never the other's.
        let got_a = cache.lookup_keyed(key, &a.text).unwrap();
        let got_b = cache.lookup_keyed(key, &b.text).unwrap();
        assert_eq!(got_a.text, a.text);
        assert_eq!(got_b.text, b.text);

        // A third text under the colliding key is a miss AND a recorded
        // collision — never a false hit.
        assert!(cache
            .lookup_keyed(key, "select r.street from US.houses h, h.rooms r")
            .is_none());
        let s = cache.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.collisions, 1);
        assert_eq!(s.entries, 2);
    }

    #[test]
    fn clear_empties_entries() {
        let _guard = VERSION_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let cache = PlanCache::new();
        cache.insert(dummy_plan("select h.hid from US.houses h"));
        assert_eq!(cache.stats().entries, 1);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert!(cache.lookup("select h.hid from US.houses h").is_none());
    }
}
