//! Logical query plans: the planner's intermediate representation.
//!
//! The planner pipeline is `parse → resolve → logical plan → rewrites →
//! physical plan` (see [`crate::plan`] for the driver and the plan cache).
//! A [`LogicalPlan`] describes *what* the query computes as a chain of
//! relational stages — scan/bind, filter, join, mapping-predicate,
//! project, sort, limit — independent of join algorithms or binding
//! order. Two rewrite passes replace what used to be ad-hoc evaluator
//! flags:
//!
//! * [`LogicalPlan::push_down_filters`] — predicate pushdown as a plan
//!   rewrite: every comparison is attached to the earliest binding stage
//!   at which all of its variables are bound (what `EvalOptions::pushdown`
//!   used to decide at runtime);
//! * [`LogicalPlan::extract_joins`] — equality-predicate extraction:
//!   a pushed-down equi-comparison linking a row-independent binding to
//!   earlier bindings is promoted to the stage's *join key*, making the
//!   join explicit so the physical planner can choose an algorithm for it.

use crate::ast::{CmpOp, Condition, Query};

/// How a binding stage produces its candidate items.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BindKind {
    /// The source is row-independent (a schema root): one scan serves
    /// every row.
    Scan,
    /// The source mentions earlier variables: re-enumerated per row.
    Bind,
}

/// One `from`-clause binding as a logical stage.
#[derive(Clone, Debug)]
pub struct BindStage {
    /// Index of the binding in the (original) `from` clause.
    pub binding: usize,
    /// The bound variable.
    pub var: String,
    /// The rendered source expression.
    pub source: String,
    /// Scan (row-independent) or per-row bind.
    pub kind: BindKind,
    /// Comparison indices (into the query's comparison list) applied at
    /// this stage — filled by [`LogicalPlan::push_down_filters`].
    pub pushed: Vec<usize>,
    /// A pushed equality comparison promoted to this stage's join key —
    /// filled by [`LogicalPlan::extract_joins`]. The index refers to the
    /// same comparison list as `pushed` (the key stays in `pushed` too:
    /// the join still confirms candidates with the real comparison).
    pub join_key: Option<usize>,
}

/// One stage of a logical plan, in execution order.
#[derive(Clone, Debug)]
pub enum LogicalStage {
    /// A `from`-clause binding (scan, bind, or — after rewrites — join).
    Bind(BindStage),
    /// A mapping predicate (generator/filter over metastore triples).
    MapPred {
        /// The rendered predicate.
        pred: String,
    },
    /// Residual comparisons evaluated after all bindings.
    Filter {
        /// Comparison indices not consumed by any binding stage.
        residual: Vec<usize>,
    },
    /// The select-clause projection.
    Project {
        /// Number of output columns.
        columns: usize,
    },
    /// The `order by` sort.
    Sort {
        /// Number of sort keys.
        keys: usize,
    },
    /// The `limit` truncation.
    Limit {
        /// Row cap.
        n: usize,
    },
}

/// A logical plan: the stage chain plus the rendered comparison list it
/// indexes into.
#[derive(Clone, Debug)]
pub struct LogicalPlan {
    /// The stages, in execution order.
    pub stages: Vec<LogicalStage>,
    /// The query's comparisons, rendered (indexed by `pushed`/`residual`).
    pub comparisons: Vec<String>,
}

impl LogicalPlan {
    /// Builds the unrewritten logical plan of a query: every comparison
    /// residual, no join keys — the shape naive evaluation executes.
    pub fn from_query(q: &Query) -> Self {
        let mut stages = Vec::new();
        let comparisons: Vec<String> = q
            .conditions
            .iter()
            .filter_map(|c| match c {
                Condition::Cmp(cmp) => Some(cmp.to_string()),
                _ => None,
            })
            .collect();
        for (bi, b) in q.from.iter().enumerate() {
            let kind = if b.source.variables().is_empty() {
                BindKind::Scan
            } else {
                BindKind::Bind
            };
            stages.push(LogicalStage::Bind(BindStage {
                binding: bi,
                var: b.var.clone(),
                source: b.source.to_string(),
                kind,
                pushed: Vec::new(),
                join_key: None,
            }));
        }
        for c in &q.conditions {
            if let Condition::MapPred(p) = c {
                stages.push(LogicalStage::MapPred {
                    pred: p.to_string(),
                });
            }
        }
        stages.push(LogicalStage::Filter {
            residual: (0..comparisons.len()).collect(),
        });
        stages.push(LogicalStage::Project {
            columns: q.select.len(),
        });
        if !q.order_by.is_empty() {
            stages.push(LogicalStage::Sort {
                keys: q.order_by.len(),
            });
        }
        if let Some(n) = q.limit {
            stages.push(LogicalStage::Limit { n });
        }
        LogicalPlan {
            stages,
            comparisons,
        }
    }

    /// Predicate pushdown as a plan rewrite: moves each comparison from
    /// the residual filter to the earliest binding stage at which all of
    /// its variables are bound. Comparisons mentioning variables that no
    /// binding declares (mapping-predicate variables bound later by triple
    /// unification) stay residual.
    pub fn push_down_filters(&mut self, q: &Query) {
        let cmps: Vec<&crate::ast::Comparison> = q
            .conditions
            .iter()
            .filter_map(|c| match c {
                Condition::Cmp(cmp) => Some(cmp),
                _ => None,
            })
            .collect();
        let cmp_vars: Vec<Vec<&str>> = cmps
            .iter()
            .map(|cmp| {
                cmp.left
                    .variables()
                    .into_iter()
                    .chain(cmp.right.variables())
                    .collect()
            })
            .collect();
        let mut assigned = vec![false; cmps.len()];
        let mut bound: Vec<&str> = Vec::new();
        for stage in &mut self.stages {
            if let LogicalStage::Bind(b) = stage {
                bound.push(q.from[b.binding].var.as_str());
                for (ci, vars) in cmp_vars.iter().enumerate() {
                    if assigned[ci] || !vars.iter().all(|v| bound.contains(v)) {
                        continue;
                    }
                    assigned[ci] = true;
                    b.pushed.push(ci);
                }
            }
        }
        for stage in &mut self.stages {
            if let LogicalStage::Filter { residual } = stage {
                residual.retain(|&ci| !assigned[ci]);
            }
        }
    }

    /// Equality-predicate extraction: promotes, on each row-independent
    /// (scan) stage, the first pushed equality comparison linking the
    /// stage's variable to earlier bindings into an explicit join key —
    /// exactly the pattern the evaluator's hash-join path can serve. The
    /// physical planner then chooses hash vs nested-loop per join.
    pub fn extract_joins(&mut self, q: &Query) {
        let cmps: Vec<&crate::ast::Comparison> = q
            .conditions
            .iter()
            .filter_map(|c| match c {
                Condition::Cmp(cmp) => Some(cmp),
                _ => None,
            })
            .collect();
        for stage in &mut self.stages {
            let LogicalStage::Bind(b) = stage else {
                continue;
            };
            if b.kind != BindKind::Scan {
                continue;
            }
            let var = q.from[b.binding].var.as_str();
            b.join_key = b.pushed.iter().copied().find(|&ci| {
                let cmp = cmps[ci];
                if cmp.op != CmpOp::Eq {
                    return false;
                }
                let l_vars = cmp.left.variables();
                let r_vars = cmp.right.variables();
                let only_candidate =
                    |vars: &[&str]| !vars.is_empty() && vars.iter().all(|v| *v == var);
                let row_side = |vars: &[&str]| !vars.is_empty() && !vars.contains(&var);
                only_candidate(&l_vars) && row_side(&r_vars)
                    || only_candidate(&r_vars) && row_side(&l_vars)
            });
        }
    }

    /// The fully rewritten logical plan (pushdown + join extraction).
    pub fn optimized(q: &Query) -> Self {
        let mut plan = Self::from_query(q);
        plan.push_down_filters(q);
        plan.extract_joins(q);
        plan
    }

    /// One line per stage, top (last stage) first — the `.explain` shape.
    pub fn render(&self) -> String {
        let mut out = String::from("LOGICAL PLAN\n");
        for stage in self.stages.iter().rev() {
            match stage {
                LogicalStage::Bind(b) => {
                    let op = match (b.kind, b.join_key) {
                        (_, Some(_)) => "join",
                        (BindKind::Scan, None) => "scan",
                        (BindKind::Bind, None) => "bind",
                    };
                    let mut line = format!("  {op:<8} {} {}", b.source, b.var);
                    if let Some(k) = b.join_key {
                        line.push_str(&format!("  on {}", self.comparisons[k]));
                    }
                    let filters: Vec<&str> = b
                        .pushed
                        .iter()
                        .filter(|ci| b.join_key != Some(**ci))
                        .map(|&ci| self.comparisons[ci].as_str())
                        .collect();
                    if !filters.is_empty() {
                        line.push_str(&format!("  filter [{}]", filters.join(" and ")));
                    }
                    out.push_str(&line);
                }
                LogicalStage::MapPred { pred } => {
                    out.push_str(&format!("  map-pred {pred}"));
                }
                LogicalStage::Filter { residual } => {
                    if residual.is_empty() {
                        continue;
                    }
                    let texts: Vec<&str> = residual
                        .iter()
                        .map(|&ci| self.comparisons[ci].as_str())
                        .collect();
                    out.push_str(&format!("  filter   [{}]", texts.join(" and ")));
                }
                LogicalStage::Project { columns } => {
                    out.push_str(&format!("  project  {columns} col(s)"));
                }
                LogicalStage::Sort { keys } => {
                    out.push_str(&format!("  sort     {keys} key(s)"));
                }
                LogicalStage::Limit { n } => {
                    out.push_str(&format!("  limit    {n}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn pushdown_moves_filters_to_binding_stages() {
        let q = parse_query(
            "select h.hid from US.houses h, US.agents a \
             where h.aid = a.aid and h.price > 100",
        )
        .unwrap();
        let mut plan = LogicalPlan::from_query(&q);
        // Unrewritten: everything residual.
        let residual_len = |p: &LogicalPlan| {
            p.stages
                .iter()
                .find_map(|s| match s {
                    LogicalStage::Filter { residual } => Some(residual.len()),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(residual_len(&plan), 2);
        plan.push_down_filters(&q);
        assert_eq!(residual_len(&plan), 0);
        // `h.price > 100` lands on h's stage, the equi-join on a's.
        let pushed: Vec<usize> = plan
            .stages
            .iter()
            .filter_map(|s| match s {
                LogicalStage::Bind(b) => Some(b.pushed.len()),
                _ => None,
            })
            .collect();
        assert_eq!(pushed, vec![1, 1]);
    }

    #[test]
    fn join_extraction_promotes_equality_on_scans() {
        let q =
            parse_query("select h.hid from US.houses h, US.agents a where a.aid = h.aid").unwrap();
        let plan = LogicalPlan::optimized(&q);
        let keys: Vec<Option<usize>> = plan
            .stages
            .iter()
            .filter_map(|s| match s {
                LogicalStage::Bind(b) => Some(b.join_key),
                _ => None,
            })
            .collect();
        // The first binding has nothing to join with; the second joins.
        assert_eq!(keys, vec![None, Some(0)]);
        let rendered = plan.render();
        assert!(rendered.contains("join"), "{rendered}");
        assert!(rendered.contains("a.aid = h.aid"), "{rendered}");
    }

    #[test]
    fn mapping_pred_variables_stay_residual() {
        let q = parse_query(
            "select m from US.houses h, h.price@map m \
             where e = h.price@elem and <db:e -> m -> 'Pdb':e2>",
        )
        .unwrap();
        let plan = LogicalPlan::optimized(&q);
        // `e = h.price@elem` mentions `e`, bound only by the predicate:
        // it must stay in the residual filter.
        let residual = plan
            .stages
            .iter()
            .find_map(|s| match s {
                LogicalStage::Filter { residual } => Some(residual.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(residual, vec![0]);
        assert!(plan.render().contains("map-pred"), "{}", plan.render());
    }
}
