//! Assembling the full Section 8 scenario.
//!
//! `listings_per_source × 5` canonical listings are generated, rendered
//! into the five source formats, and exchanged into the portal through the
//! sixteen mappings. The `overlap` fraction reproduces the paper's second
//! experiment: parts of the Windermere data also appear in Westfall and
//! Homeseekers, and parts of the Yahoo data in NK Realtors, so that "different
//! information about the same real estate entry would appear in different
//! sources" — those twins map to identical portal records and merge with
//! unioned mapping annotations.

use crate::listing::{Listing, ListingGenerator};
use crate::mappings::all_mappings;
use crate::portal_schema::portal_schema;
use crate::sources::*;
use dtr_core::tagged::{MappingSetting, MxqlError, TaggedInstance};
use dtr_model::instance::Instance;
use dtr_model::schema::Schema;
use dtr_xml::writer::{instance_to_xml, WriteOptions};

/// Configuration of the scenario generator.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioConfig {
    /// Listings generated per source (the paper's full run is 2,000 per
    /// source = 10,000 total).
    pub listings_per_source: usize,
    /// Fraction of a source's listings also emitted into its overlap
    /// partner(s).
    pub overlap: f64,
    /// RNG seed.
    pub seed: u64,
    /// Use the buggy neighborhood-only self-join in `hs2`.
    pub buggy_neighborhood_join: bool,
    /// Agent pool size (0 = auto: one agent per ~25 listings).
    pub agent_pool: usize,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            listings_per_source: 200,
            overlap: 0.0,
            seed: 2004_0315,
            buggy_neighborhood_join: false,
            agent_pool: 0,
        }
    }
}

impl ScenarioConfig {
    /// The paper-scale configuration: 2,000 listings per source (10,000
    /// total).
    pub fn paper_scale() -> Self {
        ScenarioConfig {
            listings_per_source: 2000,
            ..Default::default()
        }
    }
}

/// A fully built scenario: the mapping setting plus the five source
/// instances (in setting order: Yahoo, NK, WM, WF, HS).
pub struct Scenario {
    /// The mapping setting `<Ss, Portal, M>`.
    pub setting: MappingSetting,
    /// Source instances, in setting order.
    pub sources: Vec<Instance>,
    /// Total distinct listings generated.
    pub distinct_listings: usize,
    /// Listings emitted more than once (overlap twins).
    pub overlapped_listings: usize,
}

impl Scenario {
    /// Total bytes of the five sources serialized as plain XML — the
    /// paper's "14.3 MB of XML data" figure.
    pub fn source_xml_bytes(&self) -> usize {
        self.sources
            .iter()
            .map(|s| instance_to_xml(s, WriteOptions::plain()).len())
            .sum()
    }

    /// Runs the exchange, producing the annotated portal instance.
    pub fn exchange(self) -> Result<TaggedInstance, MxqlError> {
        TaggedInstance::exchange(self.setting, self.sources)
    }

    /// Runs the exchange with explicit options (engine selection and
    /// parallel foreach evaluation), for benchmarks and conformance laws.
    pub fn exchange_with(
        self,
        opts: &dtr_mapping::exchange::ExchangeOptions,
    ) -> Result<TaggedInstance, MxqlError> {
        TaggedInstance::exchange_with_options(self.setting, self.sources, opts)
    }
}

/// Builds the scenario (schemas, mappings, generated source instances).
pub fn build(config: ScenarioConfig) -> Scenario {
    let span = dtr_obs::span("portal.build")
        .field("listings_per_source", config.listings_per_source)
        .field("seed", config.seed);
    let n = config.listings_per_source;
    let pool = if config.agent_pool == 0 {
        (n / 25).clamp(4, 400)
    } else {
        config.agent_pool
    };
    let mut generator = ListingGenerator::new(config.seed, pool);

    let yahoo_ls: Vec<Listing> = generator.listings(n);
    let mut nk_ls: Vec<Listing> = generator.listings(n);
    let wm_ls: Vec<Listing> = generator.listings(n);
    let wf_ls: Vec<Listing> = generator.listings(n);
    let hs_ls: Vec<Listing> = generator.listings(n);

    // NK natives store a single school district.
    for l in &mut nk_ls {
        l.equalize_schools();
    }

    // Overlap: every source still publishes exactly `n` listings (the
    // total crawl size is held constant, as in the paper's comparison),
    // but `k` of NK's listings are copies of Yahoo listings and `k` of
    // Westfall's and Homeseekers' are copies of Windermere listings.
    // Yahoo twins get equalized schools on BOTH copies so the pairs map to
    // identical portal records and merge.
    let k = ((config.overlap * n as f64).round() as usize).min(n);
    let mut yahoo_ls = yahoo_ls;
    for l in yahoo_ls.iter_mut().take(k) {
        l.equalize_schools();
    }
    let mut nk_all: Vec<Listing> = nk_ls.into_iter().take(n - k).collect();
    nk_all.extend(yahoo_ls.iter().take(k).cloned());
    let mut wf_all: Vec<Listing> = wf_ls.into_iter().take(n - k).collect();
    wf_all.extend(wm_ls.iter().take(k).cloned());
    let mut hs_all: Vec<Listing> = hs_ls.into_iter().take(n - k).collect();
    hs_all.extend(wm_ls.iter().take(k).cloned());

    let sources = vec![
        yahoo_instance(&yahoo_ls),
        nk_instance(&nk_all),
        windermere_instance(&wm_ls),
        westfall_instance(&wf_all),
        homeseekers_instance(&hs_all),
    ];
    let schemas: Vec<Schema> = vec![
        yahoo_schema(),
        nk_schema(),
        windermere_schema(),
        westfall_schema(),
        homeseekers_schema(),
    ];
    let setting = MappingSetting::new(
        schemas,
        portal_schema(),
        all_mappings(config.buggy_neighborhood_join),
    )
    .expect("the portal setting validates");

    span.record("distinct_listings", 5 * n - 3 * k);
    Scenario {
        setting,
        sources,
        distinct_listings: 5 * n - 3 * k,
        overlapped_listings: 3 * k,
    }
}

/// Builds and exchanges in one step.
pub fn tagged(config: ScenarioConfig) -> TaggedInstance {
    build(config)
        .exchange()
        .expect("the portal exchange succeeds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_model::value::MappingName;

    fn small() -> ScenarioConfig {
        ScenarioConfig {
            listings_per_source: 12,
            ..Default::default()
        }
    }

    #[test]
    fn exchange_runs_and_counts_match() {
        let t = tagged(small());
        let schema = t.setting().target_schema();
        let houses = schema.resolve_path("/Portal/houses").unwrap();
        let member = schema.set_member(houses).unwrap();
        // 5 x 12 distinct listings, no overlap: one portal house each.
        assert_eq!(t.target().interpretation(member).len(), 60);
    }

    #[test]
    fn same_source_mappings_merge_on_house() {
        // Each Yahoo house must carry both y1 and y2 (features and open
        // days mappings assign the identical contract).
        let t = tagged(small());
        let r = t
            .query("select h.hid, m from Portal.houses h, h.hid@map m")
            .unwrap();
        let mut by_hid: std::collections::HashMap<String, Vec<String>> =
            std::collections::HashMap::new();
        for row in r.tuples() {
            by_hid
                .entry(row[0].to_string())
                .or_default()
                .push(row[1].to_string());
        }
        // Yahoo hids are H1000..H1011.
        let y = by_hid.get("H1000").expect("Yahoo house present");
        assert!(
            y.contains(&"y1".to_string()) && y.contains(&"y2".to_string()),
            "{y:?}"
        );
        // A Windermere house carries wm1/wm2 and, via hs? no - only wm.
        let w = by_hid.get("H1024").expect("WM house present");
        assert!(
            w.contains(&"wm1".to_string()) && w.contains(&"wm2".to_string()),
            "{w:?}"
        );
    }

    #[test]
    fn overlap_merges_across_sources() {
        let t = tagged(ScenarioConfig {
            listings_per_source: 12,
            overlap: 0.5,
            ..Default::default()
        });
        let schema = t.setting().target_schema();
        let houses = schema.resolve_path("/Portal/houses").unwrap();
        let member = schema.set_member(houses).unwrap();
        // Each source still publishes 12 listings, but 3x6 of them are
        // copies: 60 - 18 = 42 distinct portal houses, twins merged.
        assert_eq!(t.target().interpretation(member).len(), 42);
        // An overlapped Yahoo listing (H1000) carries Yahoo AND NK mappings.
        let r = t
            .query("select h.hid, m from Portal.houses h, h.hid@map m where h.hid = 'H1000'")
            .unwrap();
        let ms: Vec<String> = r.tuples().iter().map(|t| t[1].to_string()).collect();
        assert!(ms.contains(&"y1".to_string()), "{ms:?}");
        assert!(ms.contains(&"nk1".to_string()), "{ms:?}");
        // A WM overlap twin (H1024) carries wm, wf and hs mappings.
        let r = t
            .query("select h.hid, m from Portal.houses h, h.hid@map m where h.hid = 'H1024'")
            .unwrap();
        let ms: Vec<String> = r.tuples().iter().map(|t| t[1].to_string()).collect();
        assert!(ms.contains(&"wm1".to_string()), "{ms:?}");
        assert!(ms.contains(&"hs1".to_string()), "{ms:?}");
        let has_wf = ms.contains(&"wf1".to_string()) || ms.contains(&"wf2".to_string());
        assert!(has_wf, "{ms:?}");
    }

    #[test]
    fn yahoo_phone_feeds_both_slots() {
        let t = tagged(small());
        let r = t
            .query(
                "select h.contact.businessPhone, h.contact.homePhone
                 from Portal.houses h where h.hid = 'H1000'",
            )
            .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0][0], r.tuples()[0][1]);
    }

    #[test]
    fn nk_houses_have_equal_school_districts() {
        // The Section 8 accuracy finding, reproducible by a plain query.
        let t = tagged(small());
        // NK hids are H1012..H1023.
        let r = t
            .query(
                "select h.schools.elementary, h.schools.middle, h.schools.high
                 from Portal.houses h where h.hid = 'H1013'",
            )
            .unwrap();
        let row = &r.tuples()[0];
        assert_eq!(row[0], row[1]);
        assert_eq!(row[1], row[2]);
        // While a Yahoo house keeps three distinct districts.
        let r2 = t
            .query(
                "select h.schools.elementary, h.schools.middle
                 from Portal.houses h where h.hid = 'H1001'",
            )
            .unwrap();
        let row2 = &r2.tuples()[0];
        assert_ne!(row2[0], row2[1]);
    }

    #[test]
    fn buggy_join_produces_cross_city_neighbors() {
        let cfg = ScenarioConfig {
            listings_per_source: 30,
            buggy_neighborhood_join: true,
            ..Default::default()
        };
        let t = tagged(cfg);
        // Some house has a neighbor from a different city: detect by
        // checking a neighbor hid whose own city differs.
        let r = t
            .query(
                "select h.hid, h.city, b.hid
                 from Portal.houses h, h.housesInNeighborhood b",
            )
            .unwrap();
        let mut city_of: std::collections::HashMap<String, String> =
            std::collections::HashMap::new();
        let all = t
            .query("select h.hid, h.city from Portal.houses h")
            .unwrap();
        for row in all.tuples() {
            city_of.insert(row[0].to_string(), row[1].to_string());
        }
        let cross = r.tuples().iter().any(|row| {
            city_of
                .get(&row[2].to_string())
                .is_some_and(|c| *c != row[1].to_string())
        });
        assert!(cross, "buggy join must produce cross-city neighbors");

        // The fixed join does not.
        let fixed = tagged(ScenarioConfig {
            buggy_neighborhood_join: false,
            ..cfg
        });
        let r = fixed
            .query(
                "select h.hid, h.city, b.hid
                 from Portal.houses h, h.housesInNeighborhood b",
            )
            .unwrap();
        let all = fixed
            .query("select h.hid, h.city from Portal.houses h")
            .unwrap();
        let mut city_of: std::collections::HashMap<String, String> =
            std::collections::HashMap::new();
        for row in all.tuples() {
            city_of.insert(row[0].to_string(), row[1].to_string());
        }
        let cross = r.tuples().iter().any(|row| {
            city_of
                .get(&row[2].to_string())
                .is_some_and(|c| *c != row[1].to_string())
        });
        assert!(!cross, "fixed join must stay within the city");
    }

    #[test]
    fn double_arrow_reveals_the_join_elements() {
        // The paper's debugging session on housesInNeighborhood. Step 1:
        // the double-arrow query shows that `neighborhood` affects the
        // element although nothing copies it there.
        let t = tagged(ScenarioConfig {
            listings_per_source: 8,
            buggy_neighborhood_join: true,
            ..Default::default()
        });
        let r = t
            .query(
                "select db, e from where
                   <db:e => m => 'Portal':'/Portal/houses/housesInNeighborhood/hid'>",
            )
            .unwrap();
        let elems: Vec<String> = r
            .distinct_tuples()
            .iter()
            .map(|t| t[1].to_string())
            .collect();
        assert!(
            elems.contains(&"HSdb:/HS/houses/neighborhood".to_string()),
            "{elems:?}"
        );
        // ...but the single-arrow (copy) sources of the element are only
        // the copied fields, neighborhood is not among them.
        let r = t
            .query(
                "select e from where
                   <db:e -> m -> 'Portal':'/Portal/houses/housesInNeighborhood/hid'>",
            )
            .unwrap();
        let copied: Vec<String> = r
            .distinct_tuples()
            .iter()
            .map(|t| t[0].to_string())
            .collect();
        assert_eq!(copied, vec!["HSdb:/HS/houses/hid".to_string()]);

        // Step 2: inspect the join condition of the offending mapping via
        // the metastore — the buggy mapping joins on neighborhood alone...
        let join_elems = |tagged: &dtr_core::tagged::TaggedInstance| -> Vec<String> {
            let runner = dtr_core::runner::MetaRunner::new(tagged.setting()).unwrap();
            let mut catalog = tagged.catalog();
            catalog.push(runner.meta_source());
            let q = dtr_query::parser::parse_query(
                "select e.name
                 from Mapping m, Condition c, Element e
                 where m.mid = 'hs2' and c.qid = m.forQ and c.eid = e.eid",
            )
            .unwrap();
            let r = dtr_query::eval::Evaluator::new(&catalog, tagged.functions())
                .run(&q)
                .unwrap();
            let mut names: Vec<String> = r.tuples().iter().map(|t| t[0].to_string()).collect();
            names.sort();
            names.dedup();
            names
        };
        assert_eq!(join_elems(&t), vec!["neighborhood".to_string()]);

        // ...while the corrected mapping joins on city, state and
        // neighborhood (the paper: "when the mapping was updated to join on
        // city, state, and neighborhood, the problem was corrected").
        let fixed = tagged(ScenarioConfig {
            listings_per_source: 8,
            buggy_neighborhood_join: false,
            ..Default::default()
        });
        assert_eq!(
            join_elems(&fixed),
            vec![
                "city".to_string(),
                "neighborhood".to_string(),
                "state".to_string()
            ]
        );
    }

    #[test]
    fn school_district_provenance_detects_nk_merge() {
        // Section 8: "all three elements were retrieving their values from
        // a single element schoolDistrict".
        let t = tagged(small());
        for target in [
            "/Portal/houses/schools/elementary",
            "/Portal/houses/schools/middle",
            "/Portal/houses/schools/high",
        ] {
            let r = t
                .query(&format!(
                    "select e from where <'NKdb':e -> m -> 'Portal':'{target}'>"
                ))
                .unwrap();
            let elems: Vec<String> = r
                .distinct_tuples()
                .iter()
                .map(|t| t[0].to_string())
                .collect();
            assert!(
                elems.contains(&"NKdb:/NK/properties/schoolDistrict".to_string()),
                "{target}: {elems:?}"
            );
        }
    }

    #[test]
    fn source_sizes_reported() {
        let s = build(small());
        assert!(s.source_xml_bytes() > 50_000);
        assert_eq!(s.distinct_listings, 60);
        assert_eq!(s.overlapped_listings, 0);
        let _ = MappingName::new("x");
    }
}
