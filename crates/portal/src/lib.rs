//! # dtr-portal — the Section 8 experiment scenarios
//!
//! The paper's "Experience" section integrates five real-estate web sites
//! (≈55-element schemas, 10,000 listings, 14.3 MB of XML) into a
//! 135-element portal. The original crawl data no longer exists, so this
//! crate generates synthetic sources with the same statistical shape and
//! the same structural quirks the case studies rely on (see DESIGN.md's
//! substitution notes).
//!
//! * [`mod@portal_schema`] — the 135-element integrated schema.
//! * [`sources`] — the five source schemas and their emitters.
//! * [`mappings`] — the sixteen mappings (including the buggy/fixed
//!   `housesInNeighborhood` self-join variants).
//! * [`listing`] — the canonical listing generator (seeded).
//! * [`scenario`] — end-to-end assembly with overlap injection.
//! * [`nesting`] — the nesting-depth family for experiment E6.
//! * The paper's *running example* (Figures 1–3) lives in
//!   [`dtr_core::testkit`] and is re-exported as [`figure1`].

#![warn(missing_docs)]

pub mod listing;
pub mod mappings;
pub mod nesting;
pub mod portal_schema;
pub mod scenario;
pub mod sources;

/// The Figure 1 running example (re-exported from `dtr_core::testkit`).
pub mod figure1 {
    pub use dtr_core::testkit::*;
}

/// Convenient glob-import of the most used names.
pub mod prelude {
    pub use crate::listing::{Agent, Feature, Listing, ListingGenerator, OpenHouse};
    pub use crate::mappings::all_mappings;
    pub use crate::nesting::nested_tagged;
    pub use crate::portal_schema::portal_schema;
    pub use crate::scenario::{build, tagged, Scenario, ScenarioConfig};
}

pub use prelude::*;
