//! The mappings from the five sources into the portal.
//!
//! Every house-producing mapping assigns the same 22-position *contract*
//! (core fields + schools + contact) so that a listing reaching the portal
//! through two mappings — either two mappings of the same source or, for
//! overlapped listings, mappings of different sources — produces the *same*
//! portal record and merges under PNF with unioned `f_mp` annotations
//! (Figure 3's behaviour at scale).
//!
//! Noteworthy per-source details:
//!
//! * `y1`/`y2` (Yahoo): `l.contact.agentPhone` appears **twice** in the
//!   foreach select, feeding both `businessPhone` and `homePhone` — the
//!   paper's example of one source value mapped to two target elements.
//! * `nk1`/`nk2` (NK Realtors): `p.schoolDistrict` appears **three times**,
//!   populating all three school levels from one source element — the
//!   Section 8 accuracy finding waiting to be discovered with MXQL.
//! * `wm1`/`wm2` (Windermere): the contact name is
//!   `concat(a.firstName, ' ', a.lastName)` — a function combining two
//!   source elements into one target element (Section 4.3 allows this).
//! * `hs2` (Homeseekers): the `housesInNeighborhood` self-join. The buggy
//!   variant joins on `neighborhood` only; the fixed variant also joins on
//!   city and state — exactly the paper's debugging session.

use dtr_mapping::glav::Mapping;

/// The 22 portal paths every house-producing mapping assigns, rendered for
/// house variable `h`.
pub fn contract_exists(h: &str) -> String {
    [
        "hid",
        "address",
        "city",
        "state",
        "zip",
        "neighborhood",
        "price",
        "beds",
        "baths",
        "sqft",
        "yearBuilt",
        "stories",
        "style",
        "status",
        "listedDate",
        "remarks",
        "schools.elementary",
        "schools.middle",
        "schools.high",
        "contact.name",
        "contact.businessPhone",
        "contact.homePhone",
    ]
    .iter()
    .map(|f| format!("{h}.{f}"))
    .collect::<Vec<_>>()
    .join(", ")
}

fn m(name: &str, body: String) -> Mapping {
    Mapping::parse(name, &body).unwrap_or_else(|e| panic!("mapping {name} fails to parse: {e}"))
}

/// `y1`: Yahoo listings (with their feature lines) into portal houses.
pub fn y1() -> Mapping {
    m(
        "y1",
        format!(
            "foreach
               select l.id, l.street, l.city, l.state, l.zip, l.neighborhood,
                      l.price, l.bedrooms, l.bathrooms, l.area, l.built, l.levels,
                      l.styleName, l.status, l.posted, l.comments,
                      l.schoolDistricts.elementary, l.schoolDistricts.middle,
                      l.schoolDistricts.high,
                      l.contact.agentName, l.contact.agentPhone, l.contact.agentPhone,
                      x.feature, x.detail
               from Yahoo.listings l, l.extras x
             exists
               select {}, f.name, f.note
               from Portal.houses h, h.features f",
            contract_exists("h")
        ),
    )
}

/// `y2`: Yahoo listings with their open days.
pub fn y2() -> Mapping {
    m(
        "y2",
        format!(
            "foreach
               select l.id, l.street, l.city, l.state, l.zip, l.neighborhood,
                      l.price, l.bedrooms, l.bathrooms, l.area, l.built, l.levels,
                      l.styleName, l.status, l.posted, l.comments,
                      l.schoolDistricts.elementary, l.schoolDistricts.middle,
                      l.schoolDistricts.high,
                      l.contact.agentName, l.contact.agentPhone, l.contact.agentPhone,
                      d.date, d.from, d.to
               from Yahoo.listings l, l.openDays d
             exists
               select {}, o.date, o.startTime, o.endTime
               from Portal.houses h, h.openHouses o",
            contract_exists("h")
        ),
    )
}

fn nk_contract_foreach() -> &'static str {
    "p.ref, p.addr, p.town, p.region, p.postcode, p.district,
     p.askingPrice, p.beds, p.baths, p.floorArea, p.constructed, p.floors,
     p.kind, p.condition, p.advertised, p.notes,
     p.schoolDistrict, p.schoolDistrict, p.schoolDistrict,
     a.fullName, a.telephone, a.telephone"
}

/// `nk1`: NK properties joined with their agents.
pub fn nk1() -> Mapping {
    m(
        "nk1",
        format!(
            "foreach
               select {}
               from NK.properties p, NK.agents a
               where p.agentRef = a.ref
             exists
               select {}
               from Portal.houses h",
            nk_contract_foreach(),
            contract_exists("h")
        ),
    )
}

/// `nk2`: NK properties with their visit slots.
pub fn nk2() -> Mapping {
    m(
        "nk2",
        format!(
            "foreach
               select {}, v.date, v.from, v.to
               from NK.properties p, NK.agents a, p.visits v
               where p.agentRef = a.ref
             exists
               select {}, o.date, o.startTime, o.endTime
               from Portal.houses h, h.openHouses o",
            nk_contract_foreach(),
            contract_exists("h")
        ),
    )
}

/// `nk3`: NK agents into the portal agents relation.
pub fn nk3() -> Mapping {
    m(
        "nk3",
        "foreach
           select a.ref, a.fullName, a.telephone, a.email, a.branch, a.licence
           from NK.agents a
         exists
           select g.aid, g.name, g.phone, g.email, g.agency, g.license
           from Portal.agents g"
            .to_owned(),
    )
}

/// `nk4`: NK branches into the portal agencies relation.
pub fn nk4() -> Mapping {
    m(
        "nk4",
        "foreach
           select b.name, b.telephone, b.town, b.url, b.founded
           from NK.branches b
         exists
           select g.name, g.phone, g.city, g.url, g.founded
           from Portal.agencies g"
            .to_owned(),
    )
}

fn wm_contract_foreach() -> &'static str {
    "h.hid, h.street, h.city, h.state, h.zip, h.area,
     h.listPrice, h.beds, h.baths, h.sqft, h.built, h.floors,
     h.styleName, h.status, h.listedOn, h.remarks,
     h.elemSchool, h.middleSchool, h.highSchool,
     concat(a.firstName, ' ', a.lastName), a.phone, a.phone"
}

/// `wm1`: Windermere homes joined with their agents.
pub fn wm1() -> Mapping {
    m(
        "wm1",
        format!(
            "foreach
               select {}
               from WM.homes h, WM.agents a
               where h.agentId = a.agentId
             exists
               select {}
               from Portal.houses ph",
            wm_contract_foreach(),
            contract_exists("ph")
        ),
    )
}

/// `wm2`: Windermere homes with their open-house rows (a three-way join).
pub fn wm2() -> Mapping {
    m(
        "wm2",
        format!(
            "foreach
               select {}, o.date, o.from, o.to
               from WM.homes h, WM.agents a, WM.opens o
               where h.agentId = a.agentId and o.hid = h.hid
             exists
               select {}, oh.date, oh.startTime, oh.endTime
               from Portal.houses ph, ph.openHouses oh",
            wm_contract_foreach(),
            contract_exists("ph")
        ),
    )
}

/// `wm3`: Windermere agents into the portal agents relation.
pub fn wm3() -> Mapping {
    m(
        "wm3",
        "foreach
           select a.agentId, concat(a.firstName, ' ', a.lastName), a.phone,
                  a.email, a.officeName, a.license
           from WM.agents a
         exists
           select g.aid, g.name, g.phone, g.email, g.agency, g.license
           from Portal.agents g"
            .to_owned(),
    )
}

/// `wm4`: Windermere offices into the portal offices relation.
pub fn wm4() -> Mapping {
    m(
        "wm4",
        "foreach
           select o.officeName, o.street, o.city, o.phone, o.manager
           from WM.offices o
         exists
           select g.name, g.street, g.city, g.phone, g.manager
           from Portal.offices g"
            .to_owned(),
    )
}

fn wf_contract_foreach(lister: &str) -> String {
    format!(
        "i.code, i.address, i.municipality, i.state, i.postal, i.quarter,
         i.price, i.rooms, i.baths, i.size, i.yearBuilt, i.storeys,
         i.category, i.condition, i.publishedOn, i.blurb,
         i.schools.primary, i.schools.middle, i.schools.secondary,
         {lister}.name, {lister}.phone, {lister}.phone"
    )
}

/// `wf1`: Westfall inventory listed by a *person* (choice alternative).
pub fn wf1() -> Mapping {
    m(
        "wf1",
        format!(
            "foreach
               select {}, am.name, am.detail
               from WF.inventory i, i.lister->person p, i.amenities am
             exists
               select {}, f.name, f.note
               from Portal.houses h, h.features f",
            wf_contract_foreach("p"),
            contract_exists("h")
        ),
    )
}

/// `wf2`: Westfall inventory listed by a *company* (the other alternative).
pub fn wf2() -> Mapping {
    m(
        "wf2",
        format!(
            "foreach
               select {}, am.name, am.detail
               from WF.inventory i, i.lister->company c, i.amenities am
             exists
               select {}, f.name, f.note
               from Portal.houses h, h.features f",
            wf_contract_foreach("c"),
            contract_exists("h")
        ),
    )
}

fn hs_contract_foreach(h: &str) -> String {
    format!(
        "{h}.hid, {h}.addr, {h}.city, {h}.state, {h}.zip, {h}.neighborhood,
         {h}.price, {h}.beds, {h}.baths, {h}.livingArea, {h}.built, {h}.stories,
         {h}.styleDesc, {h}.status, {h}.listed, {h}.summary,
         {h}.schoolElementary, {h}.schoolMiddle, {h}.schoolHigh,
         {h}.agentName, {h}.agentPhone, {h}.agentPhone"
    )
}

/// `hs1`: Homeseekers houses into portal houses.
pub fn hs1() -> Mapping {
    m(
        "hs1",
        format!(
            "foreach
               select {}
               from HS.houses s
             exists
               select {}
               from Portal.houses h",
            hs_contract_foreach("s"),
            contract_exists("h")
        ),
    )
}

/// `hs2`: the `housesInNeighborhood` self-join — buggy (neighborhood-name
/// only) or fixed (city + state + neighborhood), per the Section 8
/// debugging session.
pub fn hs2(buggy: bool) -> Mapping {
    let join = if buggy {
        "s.neighborhood = n.neighborhood"
    } else {
        "s.neighborhood = n.neighborhood and s.city = n.city and s.state = n.state"
    };
    m(
        "hs2",
        format!(
            "foreach
               select {}, n.hid, n.addr, n.price
               from HS.houses s, HS.houses n
               where {}
             exists
               select {}, b.hid, b.address, b.price
               from Portal.houses h, h.housesInNeighborhood b",
            hs_contract_foreach("s"),
            join,
            contract_exists("h")
        ),
    )
}

/// `hs3`: Homeseekers agents into the portal agents relation.
pub fn hs3() -> Mapping {
    m(
        "hs3",
        "foreach
           select a.name, a.name, a.phone, a.email, a.office
           from HS.agents a
         exists
           select g.aid, g.name, g.phone, g.email, g.agency
           from Portal.agents g"
            .to_owned(),
    )
}

/// `hs4`: Homeseekers tours into the open-house collections.
pub fn hs4() -> Mapping {
    m(
        "hs4",
        format!(
            "foreach
               select {}, t.date, t.from, t.to
               from HS.houses s, HS.tours t
               where t.hid = s.hid
             exists
               select {}, o.date, o.startTime, o.endTime
               from Portal.houses h, h.openHouses o",
            hs_contract_foreach("s"),
            contract_exists("h")
        ),
    )
}

/// All sixteen portal mappings, with the chosen `hs2` variant.
pub fn all_mappings(buggy_neighborhood_join: bool) -> Vec<Mapping> {
    vec![
        y1(),
        y2(),
        nk1(),
        nk2(),
        nk3(),
        nk4(),
        wm1(),
        wm2(),
        wm3(),
        wm4(),
        wf1(),
        wf2(),
        hs1(),
        hs2(buggy_neighborhood_join),
        hs3(),
        hs4(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portal_schema::portal_schema;
    use crate::sources::*;
    use dtr_model::schema::Schema;

    #[test]
    fn all_mappings_validate() {
        let sources: Vec<Schema> = vec![
            yahoo_schema(),
            nk_schema(),
            windermere_schema(),
            westfall_schema(),
            homeseekers_schema(),
        ];
        let refs: Vec<&Schema> = sources.iter().collect();
        let portal = portal_schema();
        for buggy in [false, true] {
            for mapping in all_mappings(buggy) {
                mapping
                    .validate(&refs, &portal)
                    .unwrap_or_else(|e| panic!("{} invalid: {e}", mapping.name));
            }
        }
    }

    #[test]
    fn contract_has_22_positions() {
        assert_eq!(contract_exists("h").matches(", ").count() + 1, 22);
    }

    #[test]
    fn hs2_variants_differ_only_in_join() {
        let b = hs2(true);
        let f = hs2(false);
        assert_eq!(b.foreach.select, f.foreach.select);
        assert_eq!(b.exists, f.exists);
        assert_eq!(b.foreach.conditions.len(), 1);
        assert_eq!(f.foreach.conditions.len(), 3);
    }
}
