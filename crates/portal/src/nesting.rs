//! The nesting-depth experiment (E6).
//!
//! Section 8 predicts that "the annotation space overhead should decrease
//! even further if the number of nested sets in the integrated schemas
//! increases". This module generates a family of scenarios with the same
//! number of leaf values arranged at different nesting depths: at depth 1
//! everything sits in one flat relation, at depth `d` the leaves hang under
//! `d` levels of nested sets. Two mappings split the data (by a parity tag
//! on the top level), so annotation *differences* — the thing PNF
//! suppression cannot elide — occur only at top-level members; the deeper
//! the nesting, the fewer those are relative to total bytes.

use dtr_core::tagged::{MappingSetting, TaggedInstance};
use dtr_mapping::glav::Mapping;
use dtr_model::instance::{Instance, Value};
use dtr_model::schema::Schema;
use dtr_model::types::Type;

/// Builds a schema `db` with `depth` levels of nested sets (`l1`..`ld`).
/// Each level's record carries a `key` and a `tag`; leaves additionally
/// carry a `payload`.
pub fn nested_schema(db: &str, root: &str, depth: usize) -> Schema {
    assert!(depth >= 1);
    let mut ty = Type::set(Type::record(vec![
        ("key", Type::string()),
        ("tag", Type::string()),
        ("payload", Type::string()),
    ]));
    for _ in 1..depth {
        ty = Type::set(Type::record(vec![
            ("key", Type::string()),
            ("tag", Type::string()),
            ("inner", ty),
        ]));
    }
    Schema::build(db, vec![(root, ty)]).expect("nested schema is valid")
}

/// Builds a complete `width^depth`-leaf instance of [`nested_schema`].
pub fn nested_instance(db: &str, root: &str, depth: usize, width: usize) -> Instance {
    fn level(prefix: &str, depth_left: usize, width: usize) -> Vec<Value> {
        (0..width)
            .map(|i| {
                let key = format!("{prefix}.{i}");
                let tag = if i % 2 == 0 { "a" } else { "b" };
                if depth_left == 1 {
                    Value::record(vec![
                        ("key", Value::str(&key)),
                        ("tag", Value::str(tag)),
                        (
                            "payload",
                            Value::str(format!(
                                "payload text for {key} with some characteristic length"
                            )),
                        ),
                    ])
                } else {
                    Value::record(vec![
                        ("key", Value::str(&key)),
                        ("tag", Value::str(tag)),
                        ("inner", Value::set(level(&key, depth_left - 1, width))),
                    ])
                }
            })
            .collect()
    }
    let mut inst = Instance::new(db);
    inst.install_root(root, Value::set(level("k", depth, width)));
    inst
}

/// The copy mapping for one parity tag: chains one binding per level and
/// copies keys and the leaf payload.
fn copy_mapping(name: &str, depth: usize, tag: &str) -> Mapping {
    let mut from_src = String::from("Src x1");
    let mut from_tgt = String::from("Tgt y1");
    for lvl in 2..=depth {
        from_src.push_str(&format!(", x{}.inner x{lvl}", lvl - 1));
        from_tgt.push_str(&format!(", y{}.inner y{lvl}", lvl - 1));
    }
    let mut sel_src: Vec<String> = Vec::new();
    let mut sel_tgt: Vec<String> = Vec::new();
    for lvl in 1..=depth {
        sel_src.push(format!("x{lvl}.key"));
        sel_tgt.push(format!("y{lvl}.key"));
        sel_src.push(format!("x{lvl}.tag"));
        sel_tgt.push(format!("y{lvl}.tag"));
    }
    sel_src.push(format!("x{depth}.payload"));
    sel_tgt.push(format!("y{depth}.payload"));
    let body = format!(
        "foreach select {} from {} where x1.tag = '{tag}'
         exists select {} from {}",
        sel_src.join(", "),
        from_src,
        sel_tgt.join(", "),
        from_tgt,
    );
    Mapping::parse(name, &body).expect("copy mapping parses")
}

/// Builds the whole depth-`d` scenario and runs the exchange: a source with
/// `width^depth` leaves copied by two mappings (`ma` on even top-level
/// members, `mb` on odd ones).
pub fn nested_tagged(depth: usize, width: usize) -> TaggedInstance {
    let src_schema = nested_schema("SrcDb", "Src", depth);
    let tgt_schema = nested_schema("TgtDb", "Tgt", depth);
    let src_inst = nested_instance("SrcDb", "Src", depth, width);
    let setting = MappingSetting::new(
        vec![src_schema],
        tgt_schema,
        vec![
            copy_mapping("ma", depth, "a"),
            copy_mapping("mb", depth, "b"),
        ],
    )
    .expect("nested setting validates");
    TaggedInstance::exchange(setting, vec![src_inst]).expect("nested exchange succeeds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_xml::writer::SizeReport;

    #[test]
    fn schema_depth_grows() {
        assert_eq!(nested_schema("D", "R", 1).len(), 5); // set + * + key/tag/payload
        let s3 = nested_schema("D", "R", 3);
        assert!(s3.len() > nested_schema("D", "R", 1).len());
        assert!(s3.resolve_path("/R/inner/inner/payload").is_some());
    }

    #[test]
    fn exchange_copies_everything() {
        let t = nested_tagged(2, 4);
        let schema = t.setting().target_schema();
        let leaf = schema.resolve_path("/Tgt/inner/payload").unwrap();
        assert_eq!(t.target().interpretation(leaf).len(), 16);
        // Top-level members split between ma and mb.
        let top = schema.set_member(schema.roots()[0]).unwrap();
        let tops = t.target().interpretation(top);
        assert_eq!(tops.len(), 4);
        let mut a_count = 0;
        for n in tops {
            let anns = &t.target().annotation(n).mappings;
            assert_eq!(anns.len(), 1);
            if anns[0].as_str() == "ma" {
                a_count += 1;
            }
        }
        assert_eq!(a_count, 2);
    }

    #[test]
    fn deeper_nesting_lowers_pnf_overhead() {
        // Same leaf count (64), depths 1, 2, 3.
        let flat = nested_tagged(1, 64);
        let mid = nested_tagged(2, 8);
        let deep = nested_tagged(3, 4);
        let o = |t: &TaggedInstance| SizeReport::measure(t.target()).pnf_overhead();
        let (f, m, d) = (o(&flat), o(&mid), o(&deep));
        assert!(f > m, "flat {f} should exceed mid {m}");
        assert!(m > d, "mid {m} should exceed deep {d}");
    }
}
