//! The five synthetic web sources of the Section 8 scenario.
//!
//! Each source has its own schema (averaging ~55 elements, as the paper
//! reports) and an *emitter* that renders canonical [`Listing`]s in that
//! schema. The sources differ structurally in exactly the ways the paper's
//! case studies need:
//!
//! * **Yahoo** — nested contact record; its single agent phone feeds both
//!   portal phone slots ("the contact phone number from the Yahoo data
//!   source was mapped to both the business and the home phone").
//! * **NKRealtors** — a *single* `schoolDistrict` element (the Section 8
//!   accuracy finding), agents in a separate relation joined by reference.
//! * **Windermere** — flat relational design; agent names split into
//!   first/last (mappings re-join them with `concat`).
//! * **Westfall** — the lister is a `Choice` of person or company
//!   (exercising union types end-to-end).
//! * **Homeseekers** — inline agent info plus a `neighborhoods` relation;
//!   its mapping computes `housesInNeighborhood` by self-join — the buggy
//!   variant joins on neighborhood name only (Section 8's debugging case).
//!
//! Every schema also carries unmapped "filler" attributes, because real
//! sources say more than integrations keep; they feed the source-size
//! accounting of the experiments.

use crate::listing::{Agent, Listing};
use dtr_model::instance::{Instance, Value};
use dtr_model::schema::Schema;
use dtr_model::types::Type;

fn s() -> Type {
    Type::string()
}
fn i() -> Type {
    Type::integer()
}

fn v(text: impl Into<String>) -> Value {
    Value::Atomic(dtr_model::value::AtomicValue::Str(text.into()))
}

/// Collects the distinct agents of a listing batch, by id.
fn distinct_agents(listings: &[Listing]) -> Vec<Agent> {
    let mut out: Vec<Agent> = Vec::new();
    for l in listings {
        if !out.iter().any(|a| a.id == l.agent.id) {
            out.push(l.agent.clone());
        }
    }
    out
}

/// Splits `First Last` into its two parts.
fn split_name(name: &str) -> (&str, &str) {
    name.split_once(' ').unwrap_or((name, ""))
}

// ---------------------------------------------------------------- Yahoo --

/// The Yahoo source schema.
pub fn yahoo_schema() -> Schema {
    Schema::build(
        "Yahoo",
        vec![(
            "Yahoo",
            Type::record(vec![(
                "listings",
                Type::set(Type::record(vec![
                    ("id", s()),
                    ("street", s()),
                    ("city", s()),
                    ("state", s()),
                    ("zip", s()),
                    ("neighborhood", s()),
                    ("price", i()),
                    ("bedrooms", i()),
                    ("bathrooms", i()),
                    ("area", i()),
                    ("built", i()),
                    ("levels", i()),
                    ("styleName", s()),
                    ("status", s()),
                    ("posted", s()),
                    ("comments", s()),
                    (
                        "contact",
                        Type::record(vec![
                            ("agentName", s()),
                            ("agentPhone", s()),
                            ("agentEmail", s()),
                            ("office", s()),
                        ]),
                    ),
                    (
                        "schoolDistricts",
                        Type::record(vec![("elementary", s()), ("middle", s()), ("high", s())]),
                    ),
                    (
                        "extras",
                        Type::set(Type::record(vec![("feature", s()), ("detail", s())])),
                    ),
                    (
                        "openDays",
                        Type::set(Type::record(vec![
                            ("date", s()),
                            ("from", s()),
                            ("to", s()),
                        ])),
                    ),
                    // Unmapped filler.
                    ("county", s()),
                    ("garage", s()),
                    ("pool", s()),
                    ("heating", s()),
                    ("cooling", s()),
                    ("latitude", s()),
                    ("longitude", s()),
                    ("link", s()),
                    ("mlsNumber", s()),
                    ("photoCount", i()),
                    ("hoa", s()),
                    ("taxAmount", i()),
                    ("currencyCode", s()),
                    ("taxIncluded", s()),
                    ("virtualTour", s()),
                ])),
            )]),
        )],
    )
    .expect("Yahoo schema is valid")
}

/// Renders listings in the Yahoo format.
pub fn yahoo_instance(listings: &[Listing]) -> Instance {
    let mut inst = Instance::new("Yahoo");
    let members = listings
        .iter()
        .map(|l| {
            Value::record(vec![
                ("id", v(&l.hid)),
                ("street", v(&l.address)),
                ("city", v(&l.city)),
                ("state", v(&l.state)),
                ("zip", v(&l.zip)),
                ("neighborhood", v(&l.neighborhood)),
                ("price", Value::int(l.price)),
                ("bedrooms", Value::int(l.beds)),
                ("bathrooms", Value::int(l.baths)),
                ("area", Value::int(l.sqft)),
                ("built", Value::int(l.year_built)),
                ("levels", Value::int(l.stories)),
                ("styleName", v(&l.style)),
                ("status", v(&l.status)),
                ("posted", v(&l.listed_date)),
                ("comments", v(&l.remarks)),
                (
                    "contact",
                    Value::record(vec![
                        ("agentName", v(&l.agent.name)),
                        ("agentPhone", v(&l.agent.phone)),
                        ("agentEmail", v(&l.agent.email)),
                        ("office", v(&l.agent.office)),
                    ]),
                ),
                (
                    "schoolDistricts",
                    Value::record(vec![
                        ("elementary", v(&l.school_elementary)),
                        ("middle", v(&l.school_middle)),
                        ("high", v(&l.school_high)),
                    ]),
                ),
                (
                    "extras",
                    Value::set(
                        l.features
                            .iter()
                            .map(|f| {
                                Value::record(vec![("feature", v(&f.name)), ("detail", v(&f.note))])
                            })
                            .collect(),
                    ),
                ),
                (
                    "openDays",
                    Value::set(
                        l.open_houses
                            .iter()
                            .map(|o| {
                                Value::record(vec![
                                    ("date", v(&o.date)),
                                    ("from", v(&o.start)),
                                    ("to", v(&o.end)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                // Crawled records are sparse: most filler attributes are
                // absent on any given listing.
                ("county", v(format!("{} County", l.city))),
                ("mlsNumber", v(format!("Y-{}", l.hid))),
                ("taxIncluded", v("no")),
            ])
        })
        .collect();
    inst.install_root(
        "Yahoo",
        Value::record(vec![("listings", Value::Set(members))]),
    );
    inst
}

// ----------------------------------------------------------- NKRealtors --

/// The NK Realtors source schema.
pub fn nk_schema() -> Schema {
    Schema::build(
        "NKdb",
        vec![(
            "NK",
            Type::record(vec![
                (
                    "properties",
                    Type::set(Type::record(vec![
                        ("ref", s()),
                        ("addr", s()),
                        ("town", s()),
                        ("region", s()),
                        ("postcode", s()),
                        ("district", s()),
                        ("askingPrice", i()),
                        ("beds", i()),
                        ("baths", i()),
                        ("floorArea", i()),
                        ("constructed", i()),
                        ("floors", i()),
                        ("kind", s()),
                        ("condition", s()),
                        ("advertised", s()),
                        ("notes", s()),
                        ("agentRef", s()),
                        // The single school element of the accuracy case
                        // study.
                        ("schoolDistrict", s()),
                        (
                            "visits",
                            Type::set(Type::record(vec![
                                ("date", s()),
                                ("from", s()),
                                ("to", s()),
                            ])),
                        ),
                        // Unmapped filler.
                        ("currency", s()),
                        ("includesTax", s()),
                        ("heatingType", s()),
                        ("energyClass", s()),
                        ("orientation", s()),
                        ("viewDesc", s()),
                        ("parking", s()),
                        ("garden", s()),
                        ("furnished", s()),
                        ("elevator", s()),
                    ])),
                ),
                (
                    "agents",
                    Type::set(Type::record(vec![
                        ("ref", s()),
                        ("fullName", s()),
                        ("telephone", s()),
                        ("email", s()),
                        ("branch", s()),
                        ("licence", s()),
                    ])),
                ),
                (
                    "branches",
                    Type::set(Type::record(vec![
                        ("name", s()),
                        ("town", s()),
                        ("telephone", s()),
                        ("url", s()),
                        ("founded", s()),
                    ])),
                ),
            ]),
        )],
    )
    .expect("NK schema is valid")
}

/// Renders listings in the NK format. Callers must have equalized the
/// schools of each listing (see [`Listing::equalize_schools`]) — NK stores a
/// single district.
pub fn nk_instance(listings: &[Listing]) -> Instance {
    let mut inst = Instance::new("NKdb");
    let agents = distinct_agents(listings);
    let properties = listings
        .iter()
        .map(|l| {
            Value::record(vec![
                ("ref", v(&l.hid)),
                ("addr", v(&l.address)),
                ("town", v(&l.city)),
                ("region", v(&l.state)),
                ("postcode", v(&l.zip)),
                ("district", v(&l.neighborhood)),
                ("askingPrice", Value::int(l.price)),
                ("beds", Value::int(l.beds)),
                ("baths", Value::int(l.baths)),
                ("floorArea", Value::int(l.sqft)),
                ("constructed", Value::int(l.year_built)),
                ("floors", Value::int(l.stories)),
                ("kind", v(&l.style)),
                ("condition", v(&l.status)),
                ("advertised", v(&l.listed_date)),
                ("notes", v(&l.remarks)),
                ("agentRef", v(&l.agent.id)),
                ("schoolDistrict", v(l.school_district())),
                (
                    "visits",
                    Value::set(
                        l.open_houses
                            .iter()
                            .map(|o| {
                                Value::record(vec![
                                    ("date", v(&o.date)),
                                    ("from", v(&o.start)),
                                    ("to", v(&o.end)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("currency", v("USD")),
                ("includesTax", v("yes")),
                ("energyClass", v("B")),
            ])
        })
        .collect();
    let agent_rows = agents
        .iter()
        .map(|a| {
            Value::record(vec![
                ("ref", v(&a.id)),
                ("fullName", v(&a.name)),
                ("telephone", v(&a.phone)),
                ("email", v(&a.email)),
                ("branch", v(&a.office)),
                ("licence", v(format!("L-{}", a.id))),
            ])
        })
        .collect();
    let branches: Vec<Value> = {
        let mut names: Vec<&str> = agents.iter().map(|a| a.office.as_str()).collect();
        names.sort();
        names.dedup();
        names
            .into_iter()
            .map(|n| {
                Value::record(vec![
                    ("name", v(n)),
                    ("town", v("Seattle")),
                    ("telephone", v("555-0100")),
                    ("url", v("http://nk.example/branch")),
                    ("founded", v("1987")),
                ])
            })
            .collect()
    };
    inst.install_root(
        "NK",
        Value::record(vec![
            ("properties", Value::Set(properties)),
            ("agents", Value::Set(agent_rows)),
            ("branches", Value::Set(branches)),
        ]),
    );
    inst
}

// ----------------------------------------------------------- Windermere --

/// The Windermere source schema.
pub fn windermere_schema() -> Schema {
    Schema::build(
        "WMdb",
        vec![(
            "WM",
            Type::record(vec![
                (
                    "homes",
                    Type::set(Type::record(vec![
                        ("hid", s()),
                        ("street", s()),
                        ("city", s()),
                        ("state", s()),
                        ("zip", s()),
                        ("area", s()),
                        ("listPrice", i()),
                        ("beds", i()),
                        ("baths", i()),
                        ("sqft", i()),
                        ("built", i()),
                        ("floors", i()),
                        ("styleName", s()),
                        ("status", s()),
                        ("listedOn", s()),
                        ("remarks", s()),
                        ("agentId", s()),
                        ("elemSchool", s()),
                        ("middleSchool", s()),
                        ("highSchool", s()),
                        // Unmapped filler.
                        ("mls", s()),
                        ("lotSize", i()),
                        ("garage", s()),
                        ("pool", s()),
                        ("fireplace", s()),
                        ("viewDesc", s()),
                        ("waterfront", s()),
                        ("heating", s()),
                        ("cooling", s()),
                        ("roofType", s()),
                    ])),
                ),
                (
                    "agents",
                    Type::set(Type::record(vec![
                        ("agentId", s()),
                        ("firstName", s()),
                        ("lastName", s()),
                        ("phone", s()),
                        ("mobile", s()),
                        ("email", s()),
                        ("officeName", s()),
                        ("license", s()),
                    ])),
                ),
                (
                    "offices",
                    Type::set(Type::record(vec![
                        ("officeName", s()),
                        ("street", s()),
                        ("city", s()),
                        ("phone", s()),
                        ("manager", s()),
                    ])),
                ),
                (
                    "opens",
                    Type::set(Type::record(vec![
                        ("hid", s()),
                        ("date", s()),
                        ("from", s()),
                        ("to", s()),
                    ])),
                ),
            ]),
        )],
    )
    .expect("Windermere schema is valid")
}

/// Renders listings in the Windermere format.
pub fn windermere_instance(listings: &[Listing]) -> Instance {
    let mut inst = Instance::new("WMdb");
    let agents = distinct_agents(listings);
    let homes = listings
        .iter()
        .map(|l| {
            Value::record(vec![
                ("hid", v(&l.hid)),
                ("street", v(&l.address)),
                ("city", v(&l.city)),
                ("state", v(&l.state)),
                ("zip", v(&l.zip)),
                ("area", v(&l.neighborhood)),
                ("listPrice", Value::int(l.price)),
                ("beds", Value::int(l.beds)),
                ("baths", Value::int(l.baths)),
                ("sqft", Value::int(l.sqft)),
                ("built", Value::int(l.year_built)),
                ("floors", Value::int(l.stories)),
                ("styleName", v(&l.style)),
                ("status", v(&l.status)),
                ("listedOn", v(&l.listed_date)),
                ("remarks", v(&l.remarks)),
                ("agentId", v(&l.agent.id)),
                ("elemSchool", v(&l.school_elementary)),
                ("middleSchool", v(&l.school_middle)),
                ("highSchool", v(&l.school_high)),
                ("mls", v(format!("WM-{}", l.hid))),
                ("lotSize", Value::int(l.sqft * 3)),
                ("garage", v("2-car")),
            ])
        })
        .collect();
    let agent_rows = agents
        .iter()
        .map(|a| {
            let (first, last) = split_name(&a.name);
            Value::record(vec![
                ("agentId", v(&a.id)),
                ("firstName", v(first)),
                ("lastName", v(last)),
                ("phone", v(&a.phone)),
                ("mobile", v(format!("{}-m", a.phone))),
                ("email", v(&a.email)),
                ("officeName", v(&a.office)),
                ("license", v(format!("W-{}", a.id))),
            ])
        })
        .collect();
    let offices: Vec<Value> = {
        let mut names: Vec<&str> = agents.iter().map(|a| a.office.as_str()).collect();
        names.sort();
        names.dedup();
        names
            .into_iter()
            .map(|n| {
                Value::record(vec![
                    ("officeName", v(n)),
                    ("street", v("100 Market St")),
                    ("city", v("Seattle")),
                    ("phone", v("555-0200")),
                    ("manager", v("Pat Morgan")),
                ])
            })
            .collect()
    };
    let opens = listings
        .iter()
        .flat_map(|l| {
            l.open_houses.iter().map(move |o| {
                Value::record(vec![
                    ("hid", v(&l.hid)),
                    ("date", v(&o.date)),
                    ("from", v(&o.start)),
                    ("to", v(&o.end)),
                ])
            })
        })
        .collect();
    inst.install_root(
        "WM",
        Value::record(vec![
            ("homes", Value::Set(homes)),
            ("agents", Value::Set(agent_rows)),
            ("offices", Value::Set(offices)),
            ("opens", Value::Set(opens)),
        ]),
    );
    inst
}

// ------------------------------------------------------------- Westfall --

/// The Westfall source schema (the lister is a union type).
pub fn westfall_schema() -> Schema {
    Schema::build(
        "WFdb",
        vec![(
            "WF",
            Type::record(vec![(
                "inventory",
                Type::set(Type::record(vec![
                    ("code", s()),
                    ("address", s()),
                    ("municipality", s()),
                    ("state", s()),
                    ("postal", s()),
                    ("quarter", s()),
                    ("price", i()),
                    ("rooms", i()),
                    ("baths", i()),
                    ("size", i()),
                    ("yearBuilt", i()),
                    ("storeys", i()),
                    ("category", s()),
                    ("condition", s()),
                    ("publishedOn", s()),
                    ("blurb", s()),
                    (
                        "schools",
                        Type::record(vec![("primary", s()), ("middle", s()), ("secondary", s())]),
                    ),
                    (
                        "lister",
                        Type::choice(vec![
                            (
                                "person",
                                Type::record(vec![("name", s()), ("phone", s()), ("email", s())]),
                            ),
                            (
                                "company",
                                Type::record(vec![("name", s()), ("phone", s()), ("website", s())]),
                            ),
                        ]),
                    ),
                    (
                        "amenities",
                        Type::set(Type::record(vec![("name", s()), ("detail", s())])),
                    ),
                    (
                        "viewings",
                        Type::set(Type::record(vec![
                            ("date", s()),
                            ("from", s()),
                            ("to", s()),
                        ])),
                    ),
                    // Unmapped filler.
                    ("heating", s()),
                    ("cooling", s()),
                    ("parkingType", s()),
                    ("balcony", s()),
                    ("cellar", s()),
                    ("energyCert", s()),
                    ("floorNo", i()),
                    ("elevator", s()),
                    ("latitude", s()),
                    ("longitude", s()),
                    ("currency", s()),
                    ("taxesIncluded", s()),
                ])),
            )]),
        )],
    )
    .expect("Westfall schema is valid")
}

/// True if this listing's agent lists as a company in Westfall.
///
/// Deterministic in the agent id so that overlap twins stay consistent.
/// Companies keep the agent's personal name (sole-proprietor listings) so
/// that the portal contact is identical whichever alternative fires —
/// required for overlap merging.
pub fn lists_as_company(agent: &Agent) -> bool {
    agent
        .id
        .trim_start_matches('A')
        .parse::<u64>()
        .map(|n| n % 2 == 1)
        .unwrap_or(false)
}

/// Renders listings in the Westfall format.
pub fn westfall_instance(listings: &[Listing]) -> Instance {
    let mut inst = Instance::new("WFdb");
    let members = listings
        .iter()
        .map(|l| {
            let lister = if lists_as_company(&l.agent) {
                Value::choice(
                    "company",
                    Value::record(vec![
                        ("name", v(&l.agent.name)),
                        ("phone", v(&l.agent.phone)),
                        ("website", v("http://wf.example/agent")),
                    ]),
                )
            } else {
                Value::choice(
                    "person",
                    Value::record(vec![
                        ("name", v(&l.agent.name)),
                        ("phone", v(&l.agent.phone)),
                        ("email", v(&l.agent.email)),
                    ]),
                )
            };
            Value::record(vec![
                ("code", v(&l.hid)),
                ("address", v(&l.address)),
                ("municipality", v(&l.city)),
                ("state", v(&l.state)),
                ("postal", v(&l.zip)),
                ("quarter", v(&l.neighborhood)),
                ("price", Value::int(l.price)),
                ("rooms", Value::int(l.beds)),
                ("baths", Value::int(l.baths)),
                ("size", Value::int(l.sqft)),
                ("yearBuilt", Value::int(l.year_built)),
                ("storeys", Value::int(l.stories)),
                ("category", v(&l.style)),
                ("condition", v(&l.status)),
                ("publishedOn", v(&l.listed_date)),
                ("blurb", v(&l.remarks)),
                (
                    "schools",
                    Value::record(vec![
                        ("primary", v(&l.school_elementary)),
                        ("middle", v(&l.school_middle)),
                        ("secondary", v(&l.school_high)),
                    ]),
                ),
                ("lister", lister),
                (
                    "amenities",
                    Value::set(
                        l.features
                            .iter()
                            .map(|f| {
                                Value::record(vec![("name", v(&f.name)), ("detail", v(&f.note))])
                            })
                            .collect(),
                    ),
                ),
                (
                    "viewings",
                    Value::set(
                        l.open_houses
                            .iter()
                            .map(|o| {
                                Value::record(vec![
                                    ("date", v(&o.date)),
                                    ("from", v(&o.start)),
                                    ("to", v(&o.end)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("parkingType", v("driveway")),
                ("energyCert", v("C")),
                ("taxesIncluded", v("yes")),
            ])
        })
        .collect();
    inst.install_root(
        "WF",
        Value::record(vec![("inventory", Value::Set(members))]),
    );
    inst
}

// ---------------------------------------------------------- Homeseekers --

/// The Homeseekers source schema.
pub fn homeseekers_schema() -> Schema {
    Schema::build(
        "HSdb",
        vec![(
            "HS",
            Type::record(vec![
                (
                    "houses",
                    Type::set(Type::record(vec![
                        ("hid", s()),
                        ("addr", s()),
                        ("city", s()),
                        ("state", s()),
                        ("zip", s()),
                        ("neighborhood", s()),
                        ("price", i()),
                        ("beds", i()),
                        ("baths", i()),
                        ("livingArea", i()),
                        ("built", i()),
                        ("stories", i()),
                        ("styleDesc", s()),
                        ("status", s()),
                        ("listed", s()),
                        ("summary", s()),
                        ("agentName", s()),
                        ("agentPhone", s()),
                        ("schoolElementary", s()),
                        ("schoolMiddle", s()),
                        ("schoolHigh", s()),
                        // Unmapped filler.
                        ("garage", s()),
                        ("pool", s()),
                        ("heat", s()),
                        ("cool", s()),
                        ("roof", s()),
                        ("siding", s()),
                        ("basement", s()),
                        ("deck", s()),
                        ("fenced", s()),
                        ("sprinklers", s()),
                    ])),
                ),
                (
                    "neighborhoods",
                    Type::set(Type::record(vec![
                        ("name", s()),
                        ("city", s()),
                        ("state", s()),
                        ("medianPrice", i()),
                        ("walkScore", i()),
                    ])),
                ),
                (
                    "agents",
                    Type::set(Type::record(vec![
                        ("name", s()),
                        ("phone", s()),
                        ("office", s()),
                        ("email", s()),
                    ])),
                ),
                (
                    "tours",
                    Type::set(Type::record(vec![
                        ("hid", s()),
                        ("date", s()),
                        ("from", s()),
                        ("to", s()),
                    ])),
                ),
            ]),
        )],
    )
    .expect("Homeseekers schema is valid")
}

/// Renders listings in the Homeseekers format.
pub fn homeseekers_instance(listings: &[Listing]) -> Instance {
    let mut inst = Instance::new("HSdb");
    let agents = distinct_agents(listings);
    let houses = listings
        .iter()
        .map(|l| {
            Value::record(vec![
                ("hid", v(&l.hid)),
                ("addr", v(&l.address)),
                ("city", v(&l.city)),
                ("state", v(&l.state)),
                ("zip", v(&l.zip)),
                ("neighborhood", v(&l.neighborhood)),
                ("price", Value::int(l.price)),
                ("beds", Value::int(l.beds)),
                ("baths", Value::int(l.baths)),
                ("livingArea", Value::int(l.sqft)),
                ("built", Value::int(l.year_built)),
                ("stories", Value::int(l.stories)),
                ("styleDesc", v(&l.style)),
                ("status", v(&l.status)),
                ("listed", v(&l.listed_date)),
                ("summary", v(&l.remarks)),
                ("agentName", v(&l.agent.name)),
                ("agentPhone", v(&l.agent.phone)),
                ("schoolElementary", v(&l.school_elementary)),
                ("schoolMiddle", v(&l.school_middle)),
                ("schoolHigh", v(&l.school_high)),
                ("garage", v("detached")),
                ("roof", v("shingle")),
                ("deck", v("yes")),
            ])
        })
        .collect();
    let neighborhoods: Vec<Value> = {
        let mut seen: Vec<(String, String, String)> = Vec::new();
        for l in listings {
            let key = (l.neighborhood.clone(), l.city.clone(), l.state.clone());
            if !seen.contains(&key) {
                seen.push(key);
            }
        }
        seen.into_iter()
            .map(|(name, city, state)| {
                Value::record(vec![
                    ("name", v(name)),
                    ("city", v(city)),
                    ("state", v(state)),
                    ("medianPrice", Value::int(450_000)),
                    ("walkScore", Value::int(62)),
                ])
            })
            .collect()
    };
    let agent_rows = agents
        .iter()
        .map(|a| {
            Value::record(vec![
                ("name", v(&a.name)),
                ("phone", v(&a.phone)),
                ("office", v(&a.office)),
                ("email", v(&a.email)),
            ])
        })
        .collect();
    let tours = listings
        .iter()
        .flat_map(|l| {
            l.open_houses.iter().map(move |o| {
                Value::record(vec![
                    ("hid", v(&l.hid)),
                    ("date", v(&o.date)),
                    ("from", v(&o.start)),
                    ("to", v(&o.end)),
                ])
            })
        })
        .collect();
    inst.install_root(
        "HS",
        Value::record(vec![
            ("houses", Value::Set(houses)),
            ("neighborhoods", Value::Set(neighborhoods)),
            ("agents", Value::Set(agent_rows)),
            ("tours", Value::Set(tours)),
        ]),
    );
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::listing::ListingGenerator;

    fn all_schemas() -> Vec<Schema> {
        vec![
            yahoo_schema(),
            nk_schema(),
            windermere_schema(),
            westfall_schema(),
            homeseekers_schema(),
        ]
    }

    #[test]
    fn schema_sizes_average_55() {
        let sizes: Vec<usize> = all_schemas().iter().map(|s| s.len()).collect();
        let avg = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(
            (45.0..=65.0).contains(&avg),
            "average schema size {avg} (sizes {sizes:?}) should be ~55 as in the paper"
        );
        for (schema, size) in all_schemas().iter().zip(&sizes) {
            assert!(
                (40..=70).contains(size),
                "{} has {size} elements",
                schema.name()
            );
        }
    }

    #[test]
    fn instances_conform() {
        let mut g = ListingGenerator::new(3, 8);
        let ls = g.listings(12);
        let mut nk_ls = ls.clone();
        for l in &mut nk_ls {
            l.equalize_schools();
        }
        for (schema, mut inst) in [
            (yahoo_schema(), yahoo_instance(&ls)),
            (nk_schema(), nk_instance(&nk_ls)),
            (windermere_schema(), windermere_instance(&ls)),
            (westfall_schema(), westfall_instance(&ls)),
            (homeseekers_schema(), homeseekers_instance(&ls)),
        ] {
            inst.annotate_elements(&schema)
                .unwrap_or_else(|e| panic!("{} does not conform: {e}", schema.name()));
            assert!(inst.len() > 12 * 20);
        }
    }

    #[test]
    fn westfall_choice_split() {
        let mut g = ListingGenerator::new(5, 10);
        let ls = g.listings(40);
        let both = ls.iter().any(|l| lists_as_company(&l.agent))
            && ls.iter().any(|l| !lists_as_company(&l.agent));
        assert!(both, "both lister alternatives must occur");
    }

    #[test]
    fn windermere_names_split_losslessly() {
        let mut g = ListingGenerator::new(5, 10);
        let ls = g.listings(10);
        for l in &ls {
            let (first, last) = split_name(&l.agent.name);
            assert_eq!(format!("{first} {last}"), l.agent.name);
        }
    }
}
