//! Seeded synthetic real-estate data.
//!
//! The paper's experiments crawled five 2004-era web sites (14.3 MB /
//! 10,000 listings). That data is gone, so the scenario generates listings
//! with the same statistical shape: one *canonical* listing record per
//! property, which the per-source emitters of [`crate::sources`] render in
//! each source's own schema. Mappings are designed to invert the emitters
//! exactly, so a listing copied into two sources (the overlap experiment)
//! maps to the *same* portal record from both — which is what makes merged
//! values with unioned mapping annotations appear, as in the paper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A real-estate agent.
#[derive(Clone, Debug, PartialEq)]
pub struct Agent {
    /// Stable id, e.g. `A17`.
    pub id: String,
    /// Full name, always `First Last` (one space) so sources that split the
    /// name can be re-joined losslessly by `concat(first, ' ', last)`.
    pub name: String,
    /// Primary phone.
    pub phone: String,
    /// Email address.
    pub email: String,
    /// Office / agency name.
    pub office: String,
}

/// A feature line of a listing.
#[derive(Clone, Debug, PartialEq)]
pub struct Feature {
    /// Feature name.
    pub name: String,
    /// Free-text note.
    pub note: String,
}

/// A scheduled open house.
#[derive(Clone, Debug, PartialEq)]
pub struct OpenHouse {
    /// Date, `YYYY-MM-DD`.
    pub date: String,
    /// Start time.
    pub start: String,
    /// End time.
    pub end: String,
}

/// The canonical listing: the fields of the portal mapping contract plus
/// the nested collections.
#[derive(Clone, Debug, PartialEq)]
pub struct Listing {
    /// Globally unique house id, e.g. `H1042`.
    pub hid: String,
    /// Street address.
    pub address: String,
    /// City name.
    pub city: String,
    /// Two-letter state.
    pub state: String,
    /// Zip code.
    pub zip: String,
    /// Neighborhood name — deliberately reused across cities, which is what
    /// makes the buggy `housesInNeighborhood` self-join misbehave
    /// (Section 8's case study).
    pub neighborhood: String,
    /// Asking price in dollars.
    pub price: i64,
    /// Bedrooms.
    pub beds: i64,
    /// Bathrooms.
    pub baths: i64,
    /// Interior square feet.
    pub sqft: i64,
    /// Construction year.
    pub year_built: i64,
    /// Number of stories.
    pub stories: i64,
    /// Architectural style.
    pub style: String,
    /// Listing status.
    pub status: String,
    /// Listing date, `YYYY-MM-DD`.
    pub listed_date: String,
    /// Free-text remarks (the bulk of the instance bytes, as on real
    /// sites).
    pub remarks: String,
    /// Elementary school (district).
    pub school_elementary: String,
    /// Middle school (district).
    pub school_middle: String,
    /// High school (district).
    pub school_high: String,
    /// The listing agent.
    pub agent: Agent,
    /// Feature lines (at least one; conjunctive mappings join on them).
    pub features: Vec<Feature>,
    /// Open houses (at least one).
    pub open_houses: Vec<OpenHouse>,
}

impl Listing {
    /// The single school-district value NK Realtors stores (the source does
    /// not separate elementary/middle/high — Section 8's accuracy finding).
    pub fn school_district(&self) -> &str {
        &self.school_elementary
    }

    /// Forces all three school levels to one district value. Applied to
    /// every NK-destined listing: it makes the Yahoo↔NK overlap twins map
    /// to identical portal records, and it reproduces the paper's
    /// observation that NK-originated houses have all three districts
    /// equal.
    pub fn equalize_schools(&mut self) {
        let d = format!("{} Unified District", self.neighborhood);
        self.school_elementary = d.clone();
        self.school_middle = d.clone();
        self.school_high = d;
    }
}

const CITIES: &[(&str, &str, &str)] = &[
    ("Seattle", "WA", "981"),
    ("Portland", "OR", "972"),
    ("Austin", "TX", "787"),
    ("Boston", "MA", "021"),
    ("Denver", "CO", "802"),
    ("Madison", "WI", "537"),
    ("Raleigh", "NC", "276"),
    ("Tucson", "AZ", "857"),
    ("Columbus", "OH", "432"),
    ("Sacramento", "CA", "958"),
    ("Nashville", "TN", "372"),
    ("Omaha", "NE", "681"),
    ("Richmond", "VA", "232"),
    ("Spokane", "WA", "992"),
    ("Eugene", "OR", "974"),
    ("El Paso", "TX", "799"),
    ("Boulder", "CO", "803"),
    ("Ithaca", "NY", "148"),
    ("Savannah", "GA", "314"),
    ("Bend", "OR", "977"),
];

/// Neighborhood names are shared across cities on purpose (see
/// [`Listing::neighborhood`]).
const NEIGHBORHOODS: &[&str] = &[
    "Oakwood",
    "Riverside",
    "Maple Hill",
    "Sunnyvale",
    "Greenfield",
    "Lakeview",
    "Cedar Park",
    "Highland",
    "Willow Creek",
    "Fairview",
    "Brookside",
    "Elm Grove",
    "Stonegate",
    "Meadowbrook",
    "Harbor Point",
];

const STREETS: &[&str] = &[
    "Main St",
    "Oak Ave",
    "Pine Rd",
    "Maple Dr",
    "Cedar Ln",
    "Birch Way",
    "Elm Ct",
    "Walnut Blvd",
    "Spruce Pl",
    "Chestnut Ter",
    "Juniper Loop",
    "Aspen Cir",
];

const STYLES: &[&str] = &[
    "Craftsman",
    "Colonial",
    "Ranch",
    "Victorian",
    "Tudor",
    "Contemporary",
    "Bungalow",
    "Split-Level",
];

const STATUSES: &[&str] = &["active", "pending", "contingent", "active"];

const FEATURES: &[(&str, &str)] = &[
    (
        "hardwood floors",
        "refinished oak throughout the main level",
    ),
    ("granite counters", "slab granite in kitchen and baths"),
    ("fenced yard", "fully fenced back yard with mature trees"),
    ("two-car garage", "attached garage with storage loft"),
    (
        "new roof",
        "architectural composition roof installed recently",
    ),
    (
        "updated kitchen",
        "stainless appliances and custom cabinets",
    ),
    ("finished basement", "daylight basement with rec room"),
    ("central air", "high-efficiency furnace and A/C"),
    ("deck", "large entertainer's deck off the dining room"),
    ("fireplace", "gas fireplace in the living room"),
];

const FIRST_NAMES: &[&str] = &[
    "Alice", "Brian", "Carla", "Derek", "Elena", "Frank", "Grace", "Hank", "Irene", "Jorge",
    "Kara", "Liam", "Mona", "Nate", "Olga", "Pete", "Quinn", "Rosa",
];
const LAST_NAMES: &[&str] = &[
    "Anderson", "Baker", "Chen", "Dawson", "Ellis", "Foster", "Garcia", "Hughes", "Ibarra",
    "Jensen", "Kim", "Lopez", "Meyer", "Nolan", "Ortega", "Price",
];

const REMARK_BITS: &[&str] = &[
    "Charming home on a quiet tree-lined street.",
    "Light-filled rooms with generous storage throughout.",
    "Walking distance to parks, schools and the neighborhood cafe.",
    "Meticulously maintained by the original owners.",
    "Open floor plan ideal for entertaining.",
    "Private backyard retreat with established gardens.",
    "Minutes from downtown with an easy freeway commute.",
    "A rare opportunity in a sought-after location.",
    "Recent updates include fresh paint and new fixtures.",
    "Bring your ideas - great bones and endless potential.",
];

/// A deterministic generator of canonical listings and agents.
pub struct ListingGenerator {
    rng: StdRng,
    next_hid: usize,
    agents: Vec<Agent>,
}

impl ListingGenerator {
    /// Creates a generator with `agent_pool` agents and the given seed.
    pub fn new(seed: u64, agent_pool: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let agents = (0..agent_pool.max(1))
            .map(|i| {
                let first = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
                let last = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
                let office = format!(
                    "{} Realty",
                    NEIGHBORHOODS[rng.gen_range(0..NEIGHBORHOODS.len())]
                );
                Agent {
                    id: format!("A{i}"),
                    name: format!("{first} {last}"),
                    phone: format!("555-{:04}", 1000 + i),
                    email: format!(
                        "{}.{}@example.com",
                        first.to_lowercase(),
                        last.to_lowercase()
                    ),
                    office,
                }
            })
            .collect();
        ListingGenerator {
            rng,
            next_hid: 1000,
            agents,
        }
    }

    /// The agent pool.
    pub fn agents(&self) -> &[Agent] {
        &self.agents
    }

    /// Generates one listing.
    pub fn listing(&mut self) -> Listing {
        let rng = &mut self.rng;
        let (city, state, zip3) = CITIES[rng.gen_range(0..CITIES.len())];
        let neighborhood = NEIGHBORHOODS[rng.gen_range(0..NEIGHBORHOODS.len())];
        let hid = format!("H{}", self.next_hid);
        self.next_hid += 1;
        let n_features = rng.gen_range(1..=3);
        let n_open = rng.gen_range(1..=2);
        let mut features = Vec::with_capacity(n_features);
        let mut picked: Vec<usize> = Vec::new();
        while features.len() < n_features {
            let i = rng.gen_range(0..FEATURES.len());
            if !picked.contains(&i) {
                picked.push(i);
                features.push(Feature {
                    name: FEATURES[i].0.to_owned(),
                    note: FEATURES[i].1.to_owned(),
                });
            }
        }
        let open_houses = (0..n_open)
            .map(|k| {
                let day = rng.gen_range(1..=28);
                let month = rng.gen_range(1..=12);
                OpenHouse {
                    date: format!("2004-{month:02}-{day:02}"),
                    start: format!("{:02}:00", 10 + 2 * k),
                    end: format!("{:02}:00", 12 + 2 * k),
                }
            })
            .collect();
        let remarks = {
            let mut out = String::new();
            for _ in 0..rng.gen_range(5..=8) {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(REMARK_BITS[rng.gen_range(0..REMARK_BITS.len())]);
            }
            out
        };
        let agent = self.agents[rng.gen_range(0..self.agents.len())].clone();
        Listing {
            address: format!(
                "{} {}",
                rng.gen_range(100..9999),
                STREETS[rng.gen_range(0..STREETS.len())]
            ),
            city: city.to_owned(),
            state: state.to_owned(),
            zip: format!("{zip3}{:02}", rng.gen_range(0..100)),
            neighborhood: neighborhood.to_owned(),
            price: rng.gen_range(120i64..1600) * 1000,
            beds: rng.gen_range(1..=6),
            baths: rng.gen_range(1..=4),
            sqft: rng.gen_range(600..5200),
            year_built: rng.gen_range(1900..=2004),
            stories: rng.gen_range(1..=3),
            style: STYLES[rng.gen_range(0..STYLES.len())].to_owned(),
            status: STATUSES[rng.gen_range(0..STATUSES.len())].to_owned(),
            listed_date: format!(
                "2004-{:02}-{:02}",
                rng.gen_range(1..=12),
                rng.gen_range(1..=28)
            ),
            remarks,
            school_elementary: format!("{city} {neighborhood} Elementary"),
            school_middle: format!("{city} {neighborhood} Middle"),
            school_high: format!("{city} {neighborhood} High"),
            agent,
            features,
            open_houses,
            hid,
        }
    }

    /// Generates `n` listings.
    pub fn listings(&mut self, n: usize) -> Vec<Listing> {
        (0..n).map(|_| self.listing()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_with_seed() {
        let mut g1 = ListingGenerator::new(42, 10);
        let mut g2 = ListingGenerator::new(42, 10);
        assert_eq!(g1.listings(20), g2.listings(20));
        let mut g3 = ListingGenerator::new(43, 10);
        assert_ne!(g1.listings(20), g3.listings(20));
    }

    #[test]
    fn hids_unique_and_collections_nonempty() {
        let mut g = ListingGenerator::new(7, 5);
        let ls = g.listings(100);
        let mut hids: Vec<&str> = ls.iter().map(|l| l.hid.as_str()).collect();
        hids.sort();
        hids.dedup();
        assert_eq!(hids.len(), 100);
        for l in &ls {
            assert!(!l.features.is_empty());
            assert!(!l.open_houses.is_empty());
            assert!(l.agent.name.matches(' ').count() == 1, "splittable name");
        }
    }

    #[test]
    fn equalize_schools_unifies() {
        let mut g = ListingGenerator::new(1, 3);
        let mut l = g.listing();
        assert_ne!(l.school_elementary, l.school_middle);
        l.equalize_schools();
        assert_eq!(l.school_elementary, l.school_middle);
        assert_eq!(l.school_middle, l.school_high);
        assert_eq!(l.school_district(), l.school_elementary);
    }

    #[test]
    fn neighborhoods_repeat_across_cities() {
        // The precondition of the buggy-join case study: the same
        // neighborhood name in different cities.
        let mut g = ListingGenerator::new(11, 5);
        let ls = g.listings(300);
        let mut cross = false;
        'outer: for a in &ls {
            for b in &ls {
                if a.neighborhood == b.neighborhood && a.city != b.city {
                    cross = true;
                    break 'outer;
                }
            }
        }
        assert!(cross);
    }
}
