//! The integrated real-estate portal schema of the Section 8 experiments.
//!
//! The paper integrates five web sources into a portal schema of **135
//! elements**; this module reconstructs a schema of exactly that size with
//! the structures the experiments need: a deeply attributed `houses`
//! relation with nested records (schools, contact, taxes, location,
//! interior, exterior) and nested sets (features, openHouses, priceHistory,
//! media, housesInNeighborhood — the element at the center of the
//! mapping-debugging case study), plus `agents`, `agencies`, `offices` and
//! a `stats` record.
//!
//! Deliberately, the portal has **no element recording the originating data
//! source** — recovering that information is exactly what the tagged
//! instance and MXQL are for (Section 2's motivating point).

use dtr_model::schema::Schema;
use dtr_model::types::Type;

fn s() -> Type {
    Type::string()
}

/// Builds the 135-element portal schema (database name `Portal`).
pub fn portal_schema() -> Schema {
    let houses_member = Type::record(vec![
        // 16 core atomic fields — the field set every house-producing
        // mapping assigns (the "mapping contract" of `crate::mappings`).
        ("hid", s()),
        ("address", s()),
        ("city", s()),
        ("state", s()),
        ("zip", s()),
        ("neighborhood", s()),
        ("price", Type::integer()),
        ("beds", Type::integer()),
        ("baths", Type::integer()),
        ("sqft", Type::integer()),
        ("yearBuilt", Type::integer()),
        ("stories", Type::integer()),
        ("style", s()),
        ("status", s()),
        ("listedDate", s()),
        ("remarks", s()),
        // 10 extended atomic fields (populated by no current mapping;
        // they exist so "what populates this?" queries can answer
        // "nothing", as in real integrations).
        ("county", s()),
        ("garage", s()),
        ("pool", s()),
        ("view", s()),
        ("waterfront", s()),
        ("basement", s()),
        ("furnished", s()),
        ("energyRating", s()),
        ("daysOnMarket", Type::integer()),
        ("url", s()),
        ("mls", s()),
        ("lotSqft", Type::integer()),
        ("halfBaths", Type::integer()),
        ("parkingSpaces", Type::integer()),
        ("hoaFee", Type::integer()),
        ("orientation", s()),
        ("floorNumber", Type::integer()),
        ("petsAllowed", s()),
        ("virtualTour", s()),
        ("photoCount", Type::integer()),
        ("soldDate", s()),
        ("soldPrice", Type::integer()),
        // schools record: 1 + 3
        (
            "schools",
            Type::record(vec![
                ("elementary", s()),
                ("middle", s()),
                ("high", s()),
                ("district", s()),
            ]),
        ),
        // contact record: 1 + 5
        (
            "contact",
            Type::record(vec![
                ("name", s()),
                ("businessPhone", s()),
                ("homePhone", s()),
                ("email", s()),
                ("office", s()),
            ]),
        ),
        // taxes record: 1 + 3
        (
            "taxes",
            Type::record(vec![
                ("annual", Type::integer()),
                ("year", Type::integer()),
                ("taxIncluded", s()),
            ]),
        ),
        // location record: 1 + 3
        (
            "location",
            Type::record(vec![
                ("latitude", s()),
                ("longitude", s()),
                ("elevation", s()),
                ("mapUrl", s()),
            ]),
        ),
        // interior record: 1 + 5
        (
            "interior",
            Type::record(vec![
                ("heating", s()),
                ("cooling", s()),
                ("flooring", s()),
                ("appliances", s()),
                ("fireplace", s()),
            ]),
        ),
        // exterior record: 1 + 4
        (
            "exterior",
            Type::record(vec![
                ("roof", s()),
                ("construction", s()),
                ("fence", s()),
                ("parking", s()),
            ]),
        ),
        // features set: 2 + 2
        (
            "features",
            Type::set(Type::record(vec![
                ("name", s()),
                ("note", s()),
                ("category", s()),
            ])),
        ),
        // openHouses set: 2 + 3
        (
            "openHouses",
            Type::set(Type::record(vec![
                ("date", s()),
                ("startTime", s()),
                ("endTime", s()),
                ("host", s()),
            ])),
        ),
        // priceHistory set: 2 + 3
        (
            "priceHistory",
            Type::set(Type::record(vec![
                ("date", s()),
                ("amount", Type::integer()),
                ("event", s()),
                ("source", s()),
            ])),
        ),
        // media set: 2 + 3
        (
            "media",
            Type::set(Type::record(vec![
                ("kind", s()),
                ("href", s()),
                ("caption", s()),
                ("width", s()),
            ])),
        ),
        // housesInNeighborhood set: 2 + 3 — the Section 8 debugging case.
        (
            "housesInNeighborhood",
            Type::set(Type::record(vec![
                ("hid", s()),
                ("address", s()),
                ("price", Type::integer()),
            ])),
        ),
    ]);

    Schema::build(
        "Portal",
        vec![(
            "Portal",
            Type::record(vec![
                ("houses", Type::set(houses_member)),
                // agents: 2 + 8
                (
                    "agents",
                    Type::set(Type::record(vec![
                        ("aid", s()),
                        ("name", s()),
                        ("phone", s()),
                        ("email", s()),
                        ("agency", s()),
                        ("license", s()),
                        ("city", s()),
                        ("rating", s()),
                        ("fax", s()),
                        ("office", s()),
                        ("yearsActive", s()),
                    ])),
                ),
                // agencies: 2 + 5
                (
                    "agencies",
                    Type::set(Type::record(vec![
                        ("name", s()),
                        ("phone", s()),
                        ("city", s()),
                        ("url", s()),
                        ("founded", s()),
                        ("memberCount", s()),
                        ("email", s()),
                    ])),
                ),
                // offices: 2 + 5
                (
                    "offices",
                    Type::set(Type::record(vec![
                        ("name", s()),
                        ("street", s()),
                        ("city", s()),
                        ("phone", s()),
                        ("manager", s()),
                        ("fax", s()),
                        ("hours", s()),
                    ])),
                ),
                // stats: 1 + 3
                (
                    "stats",
                    Type::record(vec![
                        ("totalListings", Type::integer()),
                        ("avgPrice", Type::integer()),
                        ("lastUpdate", s()),
                    ]),
                ),
            ]),
        )],
    )
    .expect("portal schema is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portal_has_exactly_135_elements() {
        let schema = portal_schema();
        assert_eq!(
            schema.len(),
            135,
            "the paper's integrated schema has 135 elements; adjust the \
             field lists if this drifts"
        );
    }

    #[test]
    fn key_paths_resolve() {
        let schema = portal_schema();
        for path in [
            "/Portal/houses/hid",
            "/Portal/houses/schools/elementary",
            "/Portal/houses/contact/businessPhone",
            "/Portal/houses/housesInNeighborhood/hid",
            "/Portal/houses/features/name",
            "/Portal/agents/aid",
            "/Portal/stats/avgPrice",
        ] {
            assert!(schema.resolve_path(path).is_some(), "missing {path}");
        }
    }

    #[test]
    fn no_source_element_exists() {
        // The motivating gap: nothing in the portal records provenance.
        let schema = portal_schema();
        assert!(schema.resolve_path("/Portal/houses/source").is_none());
    }
}
