//! The metastore as a queryable nested-relational source.
//!
//! Section 7.1 represents the seven storage relations as `Set of Rcd[...]`
//! types "for notational simplicity"; this module materializes exactly that:
//! a [`Schema`] with one relation root per storage relation and an
//! [`Instance`] holding the rows, so that the translated MXQL queries of
//! Section 7.3 can be executed by the ordinary query evaluator against the
//! data instance *plus* this meta instance.

use crate::store::MetaStore;
use dtr_model::instance::{Instance, Value};
use dtr_model::schema::Schema;
use dtr_model::types::{AtomicType, Type};

/// The reserved database name of the metastore source.
pub const META_DB: &str = "MetaDb";

/// Value used for NULLs (the `–` of Figure 5).
pub const NULL: &str = "-";

/// Builds the nested-relational schema of the storage relations (Figure 4).
pub fn meta_schema() -> Schema {
    Schema::build(
        META_DB,
        vec![
            ("Db", Type::relation(vec![("name", AtomicType::String)])),
            (
                "Element",
                Type::relation(vec![
                    ("eid", AtomicType::String),
                    ("name", AtomicType::String),
                    ("type", AtomicType::String),
                    ("parent", AtomicType::String),
                    ("db", AtomicType::String),
                    ("path", AtomicType::String),
                ]),
            ),
            ("Query", Type::relation(vec![("qid", AtomicType::String)])),
            (
                "Binding",
                Type::relation(vec![
                    ("bid", AtomicType::String),
                    ("qid", AtomicType::String),
                    ("eid", AtomicType::String),
                    ("prev", AtomicType::String),
                ]),
            ),
            (
                "Condition",
                Type::relation(vec![
                    ("qid", AtomicType::String),
                    ("bid", AtomicType::String),
                    ("eid", AtomicType::String),
                    ("op", AtomicType::String),
                    ("bid2", AtomicType::String),
                    ("eid2", AtomicType::String),
                ]),
            ),
            (
                "Mapping",
                Type::relation(vec![
                    ("mid", AtomicType::String),
                    ("forQ", AtomicType::String),
                    ("conQ", AtomicType::String),
                ]),
            ),
            (
                "Correspondence",
                Type::relation(vec![
                    ("mid", AtomicType::String),
                    ("forBid", AtomicType::String),
                    ("forEid", AtomicType::String),
                    ("conBid", AtomicType::String),
                    ("conEid", AtomicType::String),
                ]),
            ),
        ],
    )
    .expect("the metastore schema is statically valid")
}

fn opt(v: &Option<String>) -> Value {
    Value::str(v.as_deref().unwrap_or(NULL))
}

/// Materializes the store's rows as an instance of [`meta_schema`], with
/// element annotations computed (so MXQL queries may even ask for the
/// provenance of meta-data).
pub fn meta_instance(store: &MetaStore, schema: &Schema) -> Instance {
    let span = dtr_obs::span("metastore.meta_instance").field("store_rows", store.total_rows());
    let mut inst = Instance::new(META_DB);
    inst.install_root(
        "Db",
        Value::set(
            store
                .dbs
                .iter()
                .map(|d| Value::record(vec![("name", Value::str(&d.name))]))
                .collect(),
        ),
    );
    inst.install_root(
        "Element",
        Value::set(
            store
                .elements
                .iter()
                .map(|e| {
                    Value::record(vec![
                        ("eid", Value::str(&e.eid)),
                        ("name", Value::str(&e.name)),
                        ("type", Value::str(&e.ty)),
                        ("parent", opt(&e.parent)),
                        ("db", Value::str(&e.db)),
                        ("path", Value::str(&e.path)),
                    ])
                })
                .collect(),
        ),
    );
    inst.install_root(
        "Query",
        Value::set(
            store
                .queries
                .iter()
                .map(|q| Value::record(vec![("qid", Value::str(&q.qid))]))
                .collect(),
        ),
    );
    inst.install_root(
        "Binding",
        Value::set(
            store
                .bindings
                .iter()
                .map(|b| {
                    Value::record(vec![
                        ("bid", Value::str(&b.bid)),
                        ("qid", Value::str(&b.qid)),
                        ("eid", Value::str(&b.eid)),
                        ("prev", opt(&b.prev)),
                    ])
                })
                .collect(),
        ),
    );
    inst.install_root(
        "Condition",
        Value::set(
            store
                .conditions
                .iter()
                .map(|c| {
                    Value::record(vec![
                        ("qid", Value::str(&c.qid)),
                        ("bid", opt(&c.bid)),
                        ("eid", Value::str(&c.eid)),
                        ("op", Value::str(&c.op)),
                        ("bid2", opt(&c.bid2)),
                        ("eid2", Value::str(&c.eid2)),
                    ])
                })
                .collect(),
        ),
    );
    inst.install_root(
        "Mapping",
        Value::set(
            store
                .mappings
                .iter()
                .map(|m| {
                    Value::record(vec![
                        ("mid", Value::str(&m.mid)),
                        ("forQ", Value::str(&m.for_q)),
                        ("conQ", Value::str(&m.con_q)),
                    ])
                })
                .collect(),
        ),
    );
    inst.install_root(
        "Correspondence",
        Value::set(
            store
                .correspondences
                .iter()
                .map(|c| {
                    Value::record(vec![
                        ("mid", Value::str(&c.mid)),
                        ("forBid", Value::str(&c.for_bid)),
                        ("forEid", Value::str(&c.for_eid)),
                        ("conBid", Value::str(&c.con_bid)),
                        ("conEid", Value::str(&c.con_eid)),
                    ])
                })
                .collect(),
        ),
    );
    inst.annotate_elements(schema)
        .expect("meta instance conforms to meta schema by construction");
    span.record("nodes", inst.len());
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_mapping::glav::Mapping;
    use dtr_query::eval::{Catalog, Evaluator, Source};
    use dtr_query::functions::FunctionRegistry;
    use dtr_query::parser::parse_query;

    fn store_with_figure1() -> MetaStore {
        let eu = Schema::build(
            "EUdb",
            vec![(
                "EU",
                Type::record(vec![(
                    "postings",
                    Type::set(Type::record(vec![
                        ("hid", Type::string()),
                        ("levels", Type::string()),
                        ("totalVal", Type::string()),
                        (
                            "agents",
                            Type::set(Type::record(vec![
                                ("agentName", Type::string()),
                                ("agentPhone", Type::string()),
                            ])),
                        ),
                    ])),
                )]),
            )],
        )
        .unwrap();
        let portal = Schema::build(
            "Pdb",
            vec![(
                "Portal",
                Type::record(vec![
                    (
                        "estates",
                        Type::relation(vec![
                            ("hid", AtomicType::String),
                            ("stories", AtomicType::String),
                            ("value", AtomicType::String),
                            ("contact", AtomicType::String),
                        ]),
                    ),
                    (
                        "contacts",
                        Type::relation(vec![
                            ("title", AtomicType::String),
                            ("phone", AtomicType::String),
                        ]),
                    ),
                ]),
            )],
        )
        .unwrap();
        let m3 = Mapping::parse(
            "m3",
            "foreach
               select p.hid, p.levels, p.totalVal, a.agentName, a.agentPhone
               from EU.postings p, p.agents a
             exists
               select e.hid, e.stories, e.value, c.title, c.phone
               from Portal.estates e, Portal.contacts c
               where e.contact = c.title",
        )
        .unwrap();
        let mut store = MetaStore::new();
        store.add_schema(&eu).unwrap();
        store.add_schema(&portal).unwrap();
        store.add_mapping(&m3, &[&eu], &portal).unwrap();
        store
    }

    #[test]
    fn meta_instance_is_queryable() {
        let store = store_with_figure1();
        let schema = meta_schema();
        let inst = meta_instance(&store, &schema);
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();

        // Which mappings populate the Pdb `value` element? (A hand-written
        // version of what the translator generates.)
        let q = parse_query(
            "select o.mid
             from Correspondence o, Element e
             where o.conEid = e.eid and e.path = '/Portal/estates/value' and e.db = 'Pdb'",
        )
        .unwrap();
        let r = Evaluator::new(&catalog, &funcs).run(&q).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0][0].to_string(), "m3");
    }

    #[test]
    fn joins_across_meta_relations() {
        let store = store_with_figure1();
        let schema = meta_schema();
        let inst = meta_instance(&store, &schema);
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        // Elements referenced in the where clause of m3's exists query.
        let q = parse_query(
            "select e.name
             from Mapping m, Condition c, Element e
             where c.qid = m.conQ and c.eid = e.eid and m.mid = 'm3'",
        )
        .unwrap();
        let r = Evaluator::new(&catalog, &funcs).run(&q).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0][0].to_string(), "contact");
    }

    #[test]
    fn nulls_are_dashes() {
        let store = store_with_figure1();
        let schema = meta_schema();
        let inst = meta_instance(&store, &schema);
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        let q = parse_query("select e.eid from Element e where e.parent = '-'").unwrap();
        let r = Evaluator::new(&catalog, &funcs).run(&q).unwrap();
        // Two stored schemas => two root elements.
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn meta_schema_shape() {
        let s = meta_schema();
        assert_eq!(s.roots().len(), 7);
        assert!(s.is_relation(s.resolve_path("/Element").unwrap()));
        assert!(s.resolve_path("/Correspondence/forEid").is_some());
    }
}
