//! # dtr-metastore — the meta-data physical storage schema (Section 7.1)
//!
//! Elevates schemas and mappings to stored, queryable data: the seven
//! relations of Figure 4 (`Db`, `Element`, `Query`, `Binding`, `Condition`,
//! `Mapping`, `Correspondence`), an encoder that serializes [`Schema`]s and
//! GLAV mappings into them (reproducing Figure 5), and a nested-relational
//! *view* that the translated MXQL queries of Section 7.3 execute against.
//!
//! [`Schema`]: dtr_model::schema::Schema

#![warn(missing_docs)]

pub mod audit_view;
pub mod stats_view;
pub mod store;
pub mod view;

/// Convenient glob-import of the most used names.
pub mod prelude {
    pub use crate::audit_view::{audit_instance, audit_schema, AUDIT_DB};
    pub use crate::stats_view::{stats_instance, stats_schema, STATS_DB};
    pub use crate::store::{
        BindingRow, ConditionRow, CorrespondenceRow, DbRow, ElementRow, MappingRow, MetaStore,
        QueryRow, StoreError,
    };
    pub use crate::view::{meta_instance, meta_schema, META_DB, NULL};
}

pub use prelude::*;
