//! The meta-data physical storage schema (Section 7.1, Figures 4 and 5).
//!
//! Schemas and mappings, to be queried and returned in answer sets as
//! regular data, are stored in seven relations:
//!
//! ```text
//! Db(name)
//! Element(eid, name, type, parent, db)
//! Query(qid)
//! Binding(bid, qid, eid, prev)
//! Condition(qid, bid, eid, op, bid2, eid2)
//! Mapping(mid, forQ, conQ)
//! Correspondence(mid, forBid, forEid, conBid, conEid)
//! ```
//!
//! Element ids are global across all stored schemas (Figure 5 numbers EUdb
//! as `e0..e9` and Pdb as `e30..e40`). One practical column is added beyond
//! the paper's figure: `Element.path` stores the canonical slash path, which
//! the MXQL translator compares element constants against (the paper's
//! Example 7.4 writes `e.eid = 'US/agents/title/firm'`, silently treating
//! paths as ids; the extra column makes that well-typed).
//!
//! Robustness contract: the library paths in this module are
//! `unwrap`/`expect`-free — every fallible encoding step returns a
//! [`StoreError`] — and the budgeted entry points charge each encoded row
//! so a deadline, cancellation, or row cap aborts with a structured
//! [`StoreError::Guard`].

use dtr_mapping::glav::Mapping;
use dtr_model::schema::{ElementId, Schema};
use dtr_model::value::MappingName;
use dtr_obs::guard::{Budget, GuardError, Meter};
use dtr_query::ast::{Condition, Expr, PathExpr, PathStart, Query};
use dtr_query::check::{check_query, CheckError, Resolved, SchemaCatalog};
use std::collections::HashMap;
use std::fmt;

/// `Db(name)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DbRow {
    /// The data source name.
    pub name: String,
}

/// `Element(eid, name, type, parent, db)` (+ the practical `path` column).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElementRow {
    /// Global element id, e.g. `e33`.
    pub eid: String,
    /// Element label.
    pub name: String,
    /// Element kind name (`Str`, `Rcd`, `Choice`, `Set`, ...).
    pub ty: String,
    /// Parent element id, if any.
    pub parent: Option<String>,
    /// Owning database.
    pub db: String,
    /// Canonical slash path (not in Figure 4; see module docs).
    pub path: String,
}

/// `Query(qid)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryRow {
    /// Query id, e.g. `q0`.
    pub qid: String,
}

/// `Binding(bid, qid, eid, prev)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BindingRow {
    /// Binding id — the variable name ("for the binding `Pi xi`, variable
    /// `xi` becomes the binding identifier"). Implicit root bindings get
    /// fresh `r1, r2, ...` ids.
    pub bid: String,
    /// Owning query.
    pub qid: String,
    /// The element the binding expression refers to.
    pub eid: String,
    /// The binding the expression starts from (`None` for schema roots).
    pub prev: Option<String>,
}

/// `Condition(qid, bid, eid, op, bid2, eid2)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConditionRow {
    /// Owning query.
    pub qid: String,
    /// Left expression: starting binding.
    pub bid: Option<String>,
    /// Left expression: referred element (or a constant literal).
    pub eid: String,
    /// Operator.
    pub op: String,
    /// Right expression: starting binding.
    pub bid2: Option<String>,
    /// Right expression: referred element (or a constant literal).
    pub eid2: String,
}

/// `Mapping(mid, forQ, conQ)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MappingRow {
    /// Mapping id.
    pub mid: String,
    /// The foreach query.
    pub for_q: String,
    /// The exists ("consequent") query.
    pub con_q: String,
}

/// `Correspondence(mid, forBid, forEid, conBid, conEid)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorrespondenceRow {
    /// Owning mapping.
    pub mid: String,
    /// Foreach select expression: starting binding.
    pub for_bid: String,
    /// Foreach select expression: referred element.
    pub for_eid: String,
    /// Exists select expression: starting binding.
    pub con_bid: String,
    /// Exists select expression: referred element.
    pub con_eid: String,
}

/// The in-memory metastore: the seven relations plus indexes.
#[derive(Clone, Debug, Default)]
pub struct MetaStore {
    /// `Db` rows.
    pub dbs: Vec<DbRow>,
    /// `Element` rows.
    pub elements: Vec<ElementRow>,
    /// `Query` rows.
    pub queries: Vec<QueryRow>,
    /// `Binding` rows.
    pub bindings: Vec<BindingRow>,
    /// `Condition` rows.
    pub conditions: Vec<ConditionRow>,
    /// `Mapping` rows.
    pub mappings: Vec<MappingRow>,
    /// `Correspondence` rows.
    pub correspondences: Vec<CorrespondenceRow>,
    /// `(db, local element index) -> global eid index`.
    eid_index: HashMap<(String, u32), usize>,
    next_query: usize,
    next_root_binding: usize,
}

/// Errors raised while encoding meta-data.
#[derive(Clone, Debug, PartialEq)]
pub enum StoreError {
    /// A schema with this database name is already stored.
    DuplicateDb(String),
    /// The mapping references a schema that has not been stored.
    UnknownDb(String),
    /// A mapping query failed checking.
    Check(CheckError),
    /// A query construct the storage schema cannot represent.
    Unsupported(String),
    /// The encoding exceeded its resource budget. The store may hold a
    /// partially encoded schema or mapping; callers building a store under
    /// a budget should discard it on error (see `MetaRunner::new_budgeted`).
    Guard(GuardError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::DuplicateDb(d) => write!(f, "database `{d}` already stored"),
            StoreError::UnknownDb(d) => write!(f, "database `{d}` not stored"),
            StoreError::Check(e) => write!(f, "check error: {e}"),
            StoreError::Unsupported(m) => write!(f, "unsupported construct: {m}"),
            StoreError::Guard(g) => write!(f, "{g}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CheckError> for StoreError {
    fn from(e: CheckError) -> Self {
        StoreError::Check(e)
    }
}

impl From<GuardError> for StoreError {
    fn from(g: GuardError) -> Self {
        StoreError::Guard(g)
    }
}

impl MetaStore {
    /// An empty metastore.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total rows across the seven storage relations.
    pub fn total_rows(&self) -> usize {
        self.dbs.len()
            + self.elements.len()
            + self.queries.len()
            + self.bindings.len()
            + self.conditions.len()
            + self.mappings.len()
            + self.correspondences.len()
    }

    /// Stores a schema: one `Db` row plus one `Element` row per schema
    /// element, with globally unique `eN` ids.
    pub fn add_schema(&mut self, schema: &Schema) -> Result<(), StoreError> {
        self.add_schema_budgeted(schema, &mut Budget::unlimited().meter("metastore.encode"))
    }

    /// [`MetaStore::add_schema`] under a resource budget: each encoded row
    /// charges the meter, so a deadline, cancellation, or `max_rows` cap
    /// aborts the encoding with [`StoreError::Guard`].
    pub fn add_schema_budgeted(
        &mut self,
        schema: &Schema,
        meter: &mut Meter,
    ) -> Result<(), StoreError> {
        let span = dtr_obs::span("metastore.add_schema").field("db", schema.name());
        let before = self.total_rows();
        if self.dbs.iter().any(|d| d.name == schema.name()) {
            return Err(StoreError::DuplicateDb(schema.name().to_owned()));
        }
        meter.charge_rows(1)?;
        self.dbs.push(DbRow {
            name: schema.name().to_owned(),
        });
        let base = self.elements.len();
        for (id, el) in schema.elements() {
            meter.charge_rows(1)?;
            let eid = format!("e{}", base + id.index());
            let parent = el.parent.map(|p| format!("e{}", base + p.index()));
            self.eid_index
                .insert((schema.name().to_owned(), id.0), self.elements.len());
            self.elements.push(ElementRow {
                eid,
                name: el.label.to_string(),
                ty: el.kind.name().to_owned(),
                parent,
                db: schema.name().to_owned(),
                path: schema.path(id),
            });
        }
        let encoded = self.total_rows() - before;
        dtr_obs::counters().meta_tuples_encoded.add(encoded as u64);
        span.record("rows_encoded", encoded);
        if dtr_obs::journal::enabled() {
            dtr_obs::journal::record(
                dtr_obs::journal::event(
                    "metastore.add_schema",
                    dtr_obs::journal::Outcome::MetaEncoded {
                        relation: "Element",
                    },
                )
                .detail(format!("schema {}: {encoded} rows", schema.name())),
            );
        }
        Ok(())
    }

    /// The global eid of a schema element.
    pub fn eid(&self, db: &str, element: ElementId) -> Option<&str> {
        self.eid_index
            .get(&(db.to_owned(), element.0))
            .map(|&i| self.elements[i].eid.as_str())
    }

    /// Finds an element row by database and canonical path.
    pub fn element_by_path(&self, db: &str, path: &str) -> Option<&ElementRow> {
        self.elements.iter().find(|e| e.db == db && e.path == path)
    }

    /// Delta-aware re-encode: refreshes the `Element` rows of the schema
    /// elements under the given root-rooted dot paths (`"US.houses"`)
    /// from the current schema, keeping their global eids stable. Called
    /// after an incremental-exchange batch so the catalog rows for the
    /// touched subtrees stay current without re-encoding the whole schema.
    /// Returns the number of rows refreshed.
    pub fn reencode_affected(&mut self, schema: &Schema, paths: &[String]) -> usize {
        let span = dtr_obs::span("metastore.reencode_affected").field("db", schema.name());
        let prefixes: Vec<String> = paths
            .iter()
            .map(|p| format!("/{}", p.replace('.', "/")))
            .collect();
        let mut refreshed = 0usize;
        for (id, el) in schema.elements() {
            let path = schema.path(id);
            if !prefixes
                .iter()
                .any(|pre| path == *pre || path.starts_with(&format!("{pre}/")))
            {
                continue;
            }
            let Some(&i) = self.eid_index.get(&(schema.name().to_owned(), id.0)) else {
                continue;
            };
            let parent = el.parent.and_then(|p| {
                self.eid_index
                    .get(&(schema.name().to_owned(), p.0))
                    .map(|&pi| self.elements[pi].eid.clone())
            });
            let row = &mut self.elements[i];
            row.name = el.label.to_string();
            row.ty = el.kind.name().to_owned();
            row.parent = parent;
            row.path = path;
            refreshed += 1;
        }
        dtr_obs::counters()
            .meta_tuples_encoded
            .add(refreshed as u64);
        span.record("rows_refreshed", refreshed);
        if dtr_obs::journal::enabled() && refreshed > 0 {
            dtr_obs::journal::record(
                dtr_obs::journal::event(
                    "metastore.reencode_affected",
                    dtr_obs::journal::Outcome::MetaEncoded {
                        relation: "Element",
                    },
                )
                .detail(format!(
                    "schema {}: {refreshed} row(s) refreshed for {} path(s)",
                    schema.name(),
                    paths.len()
                )),
            );
        }
        refreshed
    }

    /// Stores a mapping: a `Mapping` row, two `Query` rows with their
    /// `Binding`/`Condition` rows, and one `Correspondence` row per select
    /// position. The referenced schemas must have been stored first.
    pub fn add_mapping(
        &mut self,
        m: &Mapping,
        source_schemas: &[&Schema],
        target_schema: &Schema,
    ) -> Result<(), StoreError> {
        self.add_mapping_budgeted(
            m,
            source_schemas,
            target_schema,
            &mut Budget::unlimited().meter("metastore.encode"),
        )
    }

    /// [`MetaStore::add_mapping`] under a resource budget (see
    /// [`MetaStore::add_schema_budgeted`]).
    pub fn add_mapping_budgeted(
        &mut self,
        m: &Mapping,
        source_schemas: &[&Schema],
        target_schema: &Schema,
        meter: &mut Meter,
    ) -> Result<(), StoreError> {
        let span = dtr_obs::span("metastore.add_mapping").field("mid", &m.name);
        let before = self.total_rows();
        meter.poll()?;
        let src = check_query(&m.foreach, SchemaCatalog::new(source_schemas.to_vec()))?;
        let tgt = check_query(&m.exists, SchemaCatalog::new(vec![target_schema]))?;

        let for_q = self.fresh_query();
        let con_q = self.fresh_query();
        let for_binds = self.encode_query(&m.foreach, &src, &for_q)?;
        let con_binds = self.encode_query(&m.exists, &tgt, &con_q)?;
        meter.charge_rows((self.total_rows() - before) as u64)?;
        self.mappings.push(MappingRow {
            mid: m.name.to_string(),
            for_q: for_q.clone(),
            con_q: con_q.clone(),
        });

        for (fe, ee) in m.foreach.select.iter().zip(&m.exists.select) {
            let (cbid, ceid) = self.expr_parts(ee, &tgt, &con_binds)?;
            for (fbid, feid) in self.expr_parts_multi(fe, &src, &for_binds)? {
                meter.charge_rows(1)?;
                self.correspondences.push(CorrespondenceRow {
                    mid: m.name.to_string(),
                    for_bid: fbid.unwrap_or_default(),
                    for_eid: feid,
                    con_bid: cbid.clone().unwrap_or_default(),
                    con_eid: ceid.clone(),
                });
            }
        }
        let encoded = self.total_rows() - before;
        dtr_obs::counters().meta_tuples_encoded.add(encoded as u64);
        span.record("rows_encoded", encoded);
        if dtr_obs::journal::enabled() {
            dtr_obs::journal::record(
                dtr_obs::journal::event(
                    "metastore.add_mapping",
                    dtr_obs::journal::Outcome::MetaEncoded {
                        relation: "Mapping",
                    },
                )
                .mapping(&m.name)
                .detail(format!("{encoded} rows")),
            );
        }
        Ok(())
    }

    fn fresh_query(&mut self) -> String {
        let qid = format!("q{}", self.next_query);
        self.next_query += 1;
        self.queries.push(QueryRow { qid: qid.clone() });
        qid
    }

    /// Encodes the from/where clauses of one query. Returns the map from
    /// root label to its implicit binding id.
    fn encode_query(
        &mut self,
        q: &Query,
        resolved: &Resolved<'_>,
        qid: &str,
    ) -> Result<HashMap<String, String>, StoreError> {
        // Pass 1: implicit bindings for every schema root used anywhere
        // ("since queries have no bindings for schema roots, implicit
        // bindings are introduced for each schema root used in the query").
        let mut root_labels: Vec<String> = Vec::new();
        let note_expr = |e: &Expr, out: &mut Vec<String>| {
            if let Expr::Path(p) | Expr::ElemOf(p) | Expr::MapOf(p) = e {
                if let PathStart::Root(r) = &p.start {
                    if !out.iter().any(|l| l == r.as_str()) {
                        out.push(r.to_string());
                    }
                }
            }
        };
        for b in &q.from {
            note_expr(&b.source, &mut root_labels);
        }
        for e in &q.select {
            note_expr(e, &mut root_labels);
        }
        for c in &q.conditions {
            if let Condition::Cmp(cmp) = c {
                note_expr(&cmp.left, &mut root_labels);
                note_expr(&cmp.right, &mut root_labels);
            }
        }
        let mut root_binds: HashMap<String, String> = HashMap::new();
        for label in root_labels {
            let (s, e) = resolved
                .catalog()
                .find_root(&label)
                .ok_or_else(|| StoreError::Unsupported(format!("unknown root `{label}`")))?;
            let schema = resolved.catalog().schema(s);
            let eid = self
                .eid(schema.name(), e)
                .ok_or_else(|| StoreError::UnknownDb(schema.name().to_owned()))?
                .to_owned();
            self.next_root_binding += 1;
            let bid = format!("r{}", self.next_root_binding);
            self.bindings.push(BindingRow {
                bid: bid.clone(),
                qid: qid.to_owned(),
                eid,
                prev: None,
            });
            root_binds.insert(label, bid);
        }

        // Pass 2: declared bindings.
        for b in &q.from {
            let Expr::Path(p) = &b.source else {
                return Err(StoreError::Unsupported(format!(
                    "binding source `{}`",
                    b.source
                )));
            };
            let prev = match &p.start {
                PathStart::Root(r) => root_binds.get(r.as_str()).cloned(),
                PathStart::Var(v) => Some(v.clone()),
            };
            let eid = self.path_eid(p, resolved)?;
            self.bindings.push(BindingRow {
                bid: b.var.clone(),
                qid: qid.to_owned(),
                eid,
                prev,
            });
        }

        // Pass 3: conditions.
        for c in &q.conditions {
            match c {
                Condition::Cmp(cmp) => {
                    let (bid, eid) = self.expr_parts(&cmp.left, resolved, &root_binds)?;
                    let (bid2, eid2) = self.expr_parts(&cmp.right, resolved, &root_binds)?;
                    self.conditions.push(ConditionRow {
                        qid: qid.to_owned(),
                        bid,
                        eid,
                        op: cmp.op.symbol().to_owned(),
                        bid2,
                        eid2,
                    });
                }
                Condition::MapPred(_) => {
                    return Err(StoreError::Unsupported(
                        "mapping predicates inside stored mappings".into(),
                    ));
                }
            }
        }
        Ok(root_binds)
    }

    /// The global eid a path expression refers to.
    fn path_eid(&self, p: &PathExpr, resolved: &Resolved<'_>) -> Result<String, StoreError> {
        let kind = resolved.path_kind(p)?;
        let (s, e) = kind.element().ok_or_else(|| {
            StoreError::Unsupported(format!("expression `{p}` has no schema element"))
        })?;
        let schema = resolved.catalog().schema(s);
        self.eid(schema.name(), e)
            .map(str::to_owned)
            .ok_or_else(|| StoreError::UnknownDb(schema.name().to_owned()))
    }

    /// `(bid, eid)` of a select/condition expression: the binding it starts
    /// from and the element it refers to. Constants encode as
    /// `(None, 'literal')`.
    fn expr_parts(
        &self,
        e: &Expr,
        resolved: &Resolved<'_>,
        root_binds: &HashMap<String, String>,
    ) -> Result<(Option<String>, String), StoreError> {
        match e {
            Expr::Const(c) => Ok((None, c.display_quoted())),
            Expr::Path(p) => {
                let bid = match &p.start {
                    PathStart::Var(v) => Some(v.clone()),
                    PathStart::Root(r) => root_binds.get(r.as_str()).cloned(),
                };
                Ok((bid, self.path_eid(p, resolved)?))
            }
            other => Err(StoreError::Unsupported(format!(
                "expression `{other}` in stored mapping"
            ))),
        }
    }

    /// Like [`MetaStore::expr_parts`], but a function call yields one entry
    /// per element-referring argument (a value computed from several source
    /// elements corresponds to all of them) and constants yield none.
    fn expr_parts_multi(
        &self,
        e: &Expr,
        resolved: &Resolved<'_>,
        root_binds: &HashMap<String, String>,
    ) -> Result<Vec<(Option<String>, String)>, StoreError> {
        match e {
            Expr::Call(_, args) => {
                let mut out = Vec::new();
                for a in args {
                    if matches!(a, Expr::Const(_)) {
                        continue;
                    }
                    out.extend(self.expr_parts_multi(a, resolved, root_binds)?);
                }
                Ok(out)
            }
            Expr::Const(_) => Ok(Vec::new()),
            other => Ok(vec![self.expr_parts(other, resolved, root_binds)?]),
        }
    }

    /// Renders the whole store as Figure 5-style text tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Db\n  name\n");
        for d in &self.dbs {
            out.push_str(&format!("  {}\n", d.name));
        }
        out.push_str("\nElement\n  eid | name | type | parent | db | path\n");
        for e in &self.elements {
            out.push_str(&format!(
                "  {} | {} | {} | {} | {} | {}\n",
                e.eid,
                e.name,
                e.ty,
                e.parent.as_deref().unwrap_or("-"),
                e.db,
                e.path
            ));
        }
        out.push_str("\nQuery\n  qid\n");
        for q in &self.queries {
            out.push_str(&format!("  {}\n", q.qid));
        }
        out.push_str("\nBinding\n  bid | qid | eid | prev\n");
        for b in &self.bindings {
            out.push_str(&format!(
                "  {} | {} | {} | {}\n",
                b.bid,
                b.qid,
                b.eid,
                b.prev.as_deref().unwrap_or("-")
            ));
        }
        out.push_str("\nCondition\n  qid | bid | eid | op | bid2 | eid2\n");
        for c in &self.conditions {
            out.push_str(&format!(
                "  {} | {} | {} | {} | {} | {}\n",
                c.qid,
                c.bid.as_deref().unwrap_or("-"),
                c.eid,
                c.op,
                c.bid2.as_deref().unwrap_or("-"),
                c.eid2
            ));
        }
        out.push_str("\nMapping\n  mid | forQ | conQ\n");
        for m in &self.mappings {
            out.push_str(&format!("  {} | {} | {}\n", m.mid, m.for_q, m.con_q));
        }
        out.push_str("\nCorrespondence\n  mid | forBid | forEid | conBid | conEid\n");
        for c in &self.correspondences {
            out.push_str(&format!(
                "  {} | {} | {} | {} | {}\n",
                c.mid, c.for_bid, c.for_eid, c.con_bid, c.con_eid
            ));
        }
        out
    }

    /// Mapping names stored.
    pub fn mapping_names(&self) -> Vec<MappingName> {
        self.mappings
            .iter()
            .map(|m| MappingName::new(m.mid.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_model::types::Type;

    fn eu_schema() -> Schema {
        Schema::build(
            "EUdb",
            vec![(
                "EU",
                Type::record(vec![(
                    "postings",
                    Type::set(Type::record(vec![
                        ("hid", Type::string()),
                        ("levels", Type::string()),
                        ("totalVal", Type::string()),
                        (
                            "agents",
                            Type::set(Type::record(vec![
                                ("agentName", Type::string()),
                                ("agentPhone", Type::string()),
                            ])),
                        ),
                    ])),
                )]),
            )],
        )
        .unwrap()
    }

    fn real_portal_schema() -> Schema {
        use dtr_model::types::AtomicType;
        Schema::build(
            "Pdb",
            vec![(
                "Portal",
                Type::record(vec![
                    (
                        "estates",
                        Type::relation(vec![
                            ("hid", AtomicType::String),
                            ("stories", AtomicType::String),
                            ("value", AtomicType::String),
                            ("contact", AtomicType::String),
                        ]),
                    ),
                    (
                        "contacts",
                        Type::relation(vec![
                            ("title", AtomicType::String),
                            ("phone", AtomicType::String),
                        ]),
                    ),
                ]),
            )],
        )
        .unwrap()
    }

    fn m3() -> Mapping {
        Mapping::parse(
            "m3",
            "foreach
               select p.hid, p.levels, p.totalVal, a.agentName, a.agentPhone
               from EU.postings p, p.agents a
             exists
               select e.hid, e.stories, e.value, c.title, c.phone
               from Portal.estates e, Portal.contacts c
               where e.contact = c.title",
        )
        .unwrap()
    }

    /// Builds the Figure 5 store: EUdb + Pdb schemas and mapping m3.
    fn figure5_store() -> MetaStore {
        let eu = eu_schema();
        let portal = real_portal_schema();
        let mut store = MetaStore::new();
        store.add_schema(&eu).unwrap();
        store.add_schema(&portal).unwrap();
        store.add_mapping(&m3(), &[&eu], &portal).unwrap();
        store
    }

    #[test]
    fn element_rows_match_figure_5() {
        let store = figure5_store();
        // EUdb occupies e0..e9 exactly as in Figure 5.
        assert_eq!(store.elements[0].eid, "e0");
        assert_eq!(store.elements[0].name, "EU");
        assert_eq!(store.elements[0].ty, "Rcd");
        assert_eq!(store.elements[0].parent, None);
        let e3 = &store.elements[3];
        assert_eq!((e3.eid.as_str(), e3.name.as_str()), ("e3", "hid"));
        assert_eq!(e3.parent.as_deref(), Some("e2"));
        // Pdb starts right after EUdb's ten elements (the paper starts it at
        // e30 for readability; ids are dense here).
        let portal_first = store.elements.iter().position(|e| e.db == "Pdb").unwrap();
        assert_eq!(portal_first, 10);
        assert_eq!(store.elements[portal_first].name, "Portal");
        assert_eq!(store.dbs.len(), 2);
    }

    #[test]
    fn mapping_row_links_queries() {
        let store = figure5_store();
        assert_eq!(store.mappings.len(), 1);
        assert_eq!(store.mappings[0].mid, "m3");
        assert_eq!(store.mappings[0].for_q, "q0");
        assert_eq!(store.mappings[0].con_q, "q1");
        assert_eq!(store.queries.len(), 2);
    }

    #[test]
    fn bindings_match_figure_5_shape() {
        let store = figure5_store();
        // q0: r1 (EU root), p (postings, prev r1), a (agents, prev p).
        let q0: Vec<&BindingRow> = store.bindings.iter().filter(|b| b.qid == "q0").collect();
        assert_eq!(q0.len(), 3);
        let p = q0.iter().find(|b| b.bid == "p").unwrap();
        assert_eq!(p.eid, "e1"); // postings set
        assert_eq!(p.prev.as_deref(), Some("r1"));
        let a = q0.iter().find(|b| b.bid == "a").unwrap();
        assert_eq!(a.eid, "e6"); // agents set
        assert_eq!(a.prev.as_deref(), Some("p"));
        // q1: r2 (Portal root), e (estates), c (contacts).
        let q1: Vec<&BindingRow> = store.bindings.iter().filter(|b| b.qid == "q1").collect();
        assert_eq!(q1.len(), 3);
        let root = q1.iter().find(|b| b.prev.is_none()).unwrap();
        assert_eq!(root.bid, "r2");
    }

    #[test]
    fn condition_row_matches_figure_5() {
        let store = figure5_store();
        assert_eq!(store.conditions.len(), 1);
        let c = &store.conditions[0];
        assert_eq!(c.qid, "q1");
        assert_eq!(c.bid.as_deref(), Some("e"));
        assert_eq!(c.op, "=");
        assert_eq!(c.bid2.as_deref(), Some("c"));
        // eids: contact and title under Pdb.
        let contact = store
            .element_by_path("Pdb", "/Portal/estates/contact")
            .unwrap();
        let title = store
            .element_by_path("Pdb", "/Portal/contacts/title")
            .unwrap();
        assert_eq!(c.eid, contact.eid);
        assert_eq!(c.eid2, title.eid);
    }

    #[test]
    fn correspondences_match_figure_5() {
        let store = figure5_store();
        assert_eq!(store.correspondences.len(), 5);
        // First row: p e3 -> e e33-equivalent (hid to hid).
        let first = &store.correspondences[0];
        assert_eq!(first.mid, "m3");
        assert_eq!(first.for_bid, "p");
        assert_eq!(first.for_eid, "e3");
        assert_eq!(first.con_bid, "e");
        let hid = store.element_by_path("Pdb", "/Portal/estates/hid").unwrap();
        assert_eq!(first.con_eid, hid.eid);
        // Last row: a e9 (agentPhone) -> c (phone).
        let last = &store.correspondences[4];
        assert_eq!(last.for_bid, "a");
        assert_eq!(last.for_eid, "e9");
    }

    #[test]
    fn duplicate_schema_rejected() {
        let eu = eu_schema();
        let mut store = MetaStore::new();
        store.add_schema(&eu).unwrap();
        assert_eq!(
            store.add_schema(&eu),
            Err(StoreError::DuplicateDb("EUdb".into()))
        );
    }

    #[test]
    fn render_contains_all_relations() {
        let store = figure5_store();
        let text = store.render();
        for heading in [
            "Db",
            "Element",
            "Query",
            "Binding",
            "Condition",
            "Mapping",
            "Correspondence",
        ] {
            assert!(text.contains(heading), "missing {heading}");
        }
        assert!(text.contains("e3 | hid | Str | e2 | EUdb | /EU/postings/hid"));
    }

    #[test]
    fn constant_conditions_encoded_as_literals() {
        // A foreach condition against a constant stores the literal in the
        // eid column with no binding.
        let eu = eu_schema();
        let portal = real_portal_schema();
        let m = Mapping::parse(
            "mf",
            "foreach select p.hid, p.levels, p.totalVal, a.agentName, a.agentPhone
               from EU.postings p, p.agents a
               where p.levels = '2'
             exists select e.hid, e.stories, e.value, c.title, c.phone
               from Portal.estates e, Portal.contacts c
               where e.contact = c.title",
        )
        .unwrap();
        let mut store = MetaStore::new();
        store.add_schema(&eu).unwrap();
        store.add_schema(&portal).unwrap();
        store.add_mapping(&m, &[&eu], &portal).unwrap();
        let c = store
            .conditions
            .iter()
            .find(|c| c.qid == "q0")
            .expect("the foreach condition row exists");
        assert_eq!(c.bid.as_deref(), Some("p"));
        assert_eq!(c.bid2, None);
        assert_eq!(c.eid2, "'2'");
    }

    #[test]
    fn mapping_predicates_in_stored_mappings_rejected() {
        let eu = eu_schema();
        let portal = real_portal_schema();
        let m = Mapping {
            name: dtr_model::value::MappingName::new("weird"),
            foreach: dtr_query::parser::parse_query(
                "select p.hid from EU.postings p where <db:e -> mm -> 'Pdb':e2>",
            )
            .unwrap(),
            exists: dtr_query::parser::parse_query("select e.hid from Portal.estates e").unwrap(),
        };
        let mut store = MetaStore::new();
        store.add_schema(&eu).unwrap();
        store.add_schema(&portal).unwrap();
        assert!(matches!(
            store.add_mapping(&m, &[&eu], &portal),
            Err(StoreError::Unsupported(_))
        ));
    }

    #[test]
    fn mapping_names_listed() {
        let store = figure5_store();
        let names = store.mapping_names();
        assert_eq!(names.len(), 1);
        assert_eq!(names[0].as_str(), "m3");
    }

    #[test]
    fn eid_lookup() {
        let store = figure5_store();
        let eu = eu_schema();
        let agents = eu.resolve_path("/EU/postings/agents").unwrap();
        assert_eq!(store.eid("EUdb", agents), Some("e6"));
        assert_eq!(store.eid("Nope", agents), None);
    }
}
