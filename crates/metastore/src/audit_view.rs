//! The audit log as a queryable nested-relational source.
//!
//! Section 7.1 stores schemas and mappings as data so the system can be
//! asked about itself; [`crate::stats_view`] extends that move to runtime
//! statistics, and this module extends it to the request history: a slice
//! of [`AuditRecord`]s (see `dtr_obs::audit`) becomes the single
//! `AuditLog` relation of the `AuditDb` meta-instance, so MXQL queries
//! can ask "which query fingerprint was slowest?" or "which requests
//! tripped a guard?" with the same evaluator that runs data queries.

use dtr_model::instance::{Instance, Value};
use dtr_model::schema::Schema;
use dtr_model::types::{AtomicType, Type};
use dtr_obs::AuditRecord;

/// The reserved database name of the audit source.
pub const AUDIT_DB: &str = "AuditDb";

/// Builds the nested-relational schema of the audit relation.
pub fn audit_schema() -> Schema {
    Schema::build(
        AUDIT_DB,
        vec![(
            "AuditLog",
            Type::relation(vec![
                ("seq", AtomicType::Integer),
                ("kind", AtomicType::String),
                ("fingerprint", AtomicType::String),
                ("request", AtomicType::String),
                ("rows", AtomicType::Integer),
                ("wallNs", AtomicType::Integer),
                ("outcome", AtomicType::String),
                ("tuplesScanned", AtomicType::Integer),
                ("bindingsEnumerated", AtomicType::Integer),
                ("triplesTested", AtomicType::Integer),
                ("hashProbes", AtomicType::Integer),
            ]),
        )],
    )
    .expect("the audit schema is statically valid")
}

/// `u64` counters clamped into the `Integer` column type.
fn int(v: u64) -> Value {
    Value::int(i64::try_from(v).unwrap_or(i64::MAX))
}

/// Materializes audit records as an instance of [`audit_schema`], with
/// element annotations computed so the audit relation composes with
/// annotation-aware queries like any other source.
pub fn audit_instance(records: &[AuditRecord], schema: &Schema) -> Instance {
    let span = dtr_obs::span("metastore.audit_instance").field("records", records.len());
    let mut inst = Instance::new(AUDIT_DB);
    inst.install_root(
        "AuditLog",
        Value::set(
            records
                .iter()
                .map(|r| {
                    Value::record(vec![
                        ("seq", int(r.seq)),
                        ("kind", Value::str(&r.kind)),
                        ("fingerprint", Value::str(&r.fingerprint)),
                        ("request", Value::str(&r.request)),
                        ("rows", int(r.rows)),
                        ("wallNs", int(r.wall_ns)),
                        ("outcome", Value::str(&r.outcome)),
                        ("tuplesScanned", int(r.tuples_scanned)),
                        ("bindingsEnumerated", int(r.bindings_enumerated)),
                        ("triplesTested", int(r.predicate_triples_tested)),
                        ("hashProbes", int(r.hash_probes)),
                    ])
                })
                .collect(),
        ),
    );
    inst.annotate_elements(schema)
        .expect("audit instance conforms to audit schema by construction");
    span.record("nodes", inst.len());
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_model::value::AtomicValue;
    use dtr_query::eval::{Catalog, Evaluator, Source};
    use dtr_query::functions::FunctionRegistry;
    use dtr_query::parser::parse_query;

    fn sample_records() -> Vec<AuditRecord> {
        let mut fast = AuditRecord::new("query", "select e.hid from Portal.estates e");
        fast.seq = 1;
        fast.rows = 3;
        fast.wall_ns = 12_000;
        fast.tuples_scanned = 9;
        let mut slow = AuditRecord::new("translate", "select e from where <db:e -> m -> 'Pdb':p>");
        slow.seq = 2;
        slow.rows = 1;
        slow.wall_ns = 880_000;
        slow.bindings_enumerated = 42;
        let mut tripped = AuditRecord::new("exchange", "m1,m2,m3");
        tripped.seq = 3;
        tripped.wall_ns = 55_000;
        tripped.outcome = "guard:rows".to_string();
        vec![fast, slow, tripped]
    }

    fn run(records: &[AuditRecord], text: &str) -> Vec<Vec<String>> {
        let schema = audit_schema();
        let inst = audit_instance(records, &schema);
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        let q = parse_query(text).unwrap();
        let r = Evaluator::new(&catalog, &funcs).run(&q).unwrap();
        r.tuples()
            .iter()
            .map(|t| t.iter().map(|v| v.to_string()).collect())
            .collect()
    }

    #[test]
    fn slowest_request_by_fingerprint() {
        let records = sample_records();
        let rows = run(
            &records,
            "select a.fingerprint, a.wallNs from AuditLog a order by a.wallNs desc limit 1",
        );
        assert_eq!(rows.len(), 1);
        // The meta-instance answer matches the raw log's own maximum.
        let raw_slowest = records.iter().max_by_key(|r| r.wall_ns).unwrap();
        assert_eq!(rows[0][0], raw_slowest.fingerprint);
        assert_eq!(rows[0][1], raw_slowest.wall_ns.to_string());
    }

    #[test]
    fn guard_trips_are_filterable() {
        let rows = run(
            &sample_records(),
            "select a.kind, a.request from AuditLog a where a.outcome = 'guard:rows'",
        );
        assert_eq!(
            rows,
            vec![vec!["exchange".to_string(), "m1,m2,m3".to_string()]]
        );
    }

    #[test]
    fn eval_stats_columns_are_queryable() {
        let schema = audit_schema();
        let inst = audit_instance(&sample_records(), &schema);
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        let q = parse_query("select a.bindingsEnumerated from AuditLog a where a.seq = 2").unwrap();
        let r = Evaluator::new(&catalog, &funcs).run(&q).unwrap();
        assert_eq!(r.tuples()[0][0], AtomicValue::Int(42));
    }

    #[test]
    fn jsonl_round_trips_into_instance() {
        let records = sample_records();
        let jsonl: String = records
            .iter()
            .map(|r| r.to_json().to_string() + "\n")
            .collect();
        let parsed = AuditRecord::from_jsonl(&jsonl).unwrap();
        assert_eq!(parsed, records);
        let schema = audit_schema();
        assert_eq!(
            audit_instance(&parsed, &schema).len(),
            audit_instance(&records, &schema).len()
        );
    }
}
