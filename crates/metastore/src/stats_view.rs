//! The statistics catalog as a queryable nested-relational source.
//!
//! Section 7.1 stores schemas and mappings as data so the system can be
//! asked about itself; this module extends the same move to the runtime
//! statistics the engine gathers (see `dtr_obs::stats`): the
//! [`StatsCatalog`] becomes three relations — per-path tuple/distinct
//! counts, per-join-key selectivities, and the set-cardinality histogram —
//! so MXQL queries can join observed statistics against the `Element`
//! relation of [`crate::view`] or filter joins by measured selectivity.

use dtr_model::instance::{Instance, Value};
use dtr_model::schema::Schema;
use dtr_model::types::{AtomicType, Type};
use dtr_model::value::AtomicValue;
use dtr_obs::{bucket_lower, bucket_upper, StatsCatalog};

/// The reserved database name of the statistics source.
pub const STATS_DB: &str = "StatsDb";

/// Selectivity value stored when a join saw no cross product at all (the
/// ratio is undefined); negative so `where j.selectivity > 0.1` style
/// predicates never select it by accident.
pub const UNDEFINED_SELECTIVITY: f64 = -1.0;

/// Builds the nested-relational schema of the statistics relations.
pub fn stats_schema() -> Schema {
    Schema::build(
        STATS_DB,
        vec![
            (
                "PathStats",
                Type::relation(vec![
                    ("path", AtomicType::String),
                    ("tuples", AtomicType::Integer),
                    ("sets", AtomicType::Integer),
                    ("distinctEst", AtomicType::Integer),
                ]),
            ),
            (
                "JoinStats",
                Type::relation(vec![
                    ("key", AtomicType::String),
                    ("buildRows", AtomicType::Integer),
                    ("probeRows", AtomicType::Integer),
                    ("probes", AtomicType::Integer),
                    ("matches", AtomicType::Integer),
                    ("selectivity", AtomicType::Float),
                ]),
            ),
            (
                "SetCardHist",
                Type::relation(vec![
                    ("path", AtomicType::String),
                    ("bucket", AtomicType::Integer),
                    ("lo", AtomicType::Integer),
                    ("hi", AtomicType::Integer),
                    ("count", AtomicType::Integer),
                ]),
            ),
        ],
    )
    .expect("the statistics schema is statically valid")
}

/// `u64` counters clamped into the `Integer` column type.
fn int(v: u64) -> Value {
    Value::int(i64::try_from(v).unwrap_or(i64::MAX))
}

/// Materializes a statistics catalog as an instance of [`stats_schema`],
/// with element annotations computed so the statistics relations compose
/// with annotation-aware queries like any other source.
pub fn stats_instance(catalog: &StatsCatalog, schema: &Schema) -> Instance {
    let span = dtr_obs::span("metastore.stats_instance")
        .field("paths", catalog.paths.len())
        .field("joins", catalog.joins.len());
    let mut inst = Instance::new(STATS_DB);
    inst.install_root(
        "PathStats",
        Value::set(
            catalog
                .paths
                .iter()
                .map(|(path, s)| {
                    Value::record(vec![
                        ("path", Value::str(path)),
                        ("tuples", int(s.tuples)),
                        ("sets", int(s.sets)),
                        ("distinctEst", int(s.distinct_estimate())),
                    ])
                })
                .collect(),
        ),
    );
    inst.install_root(
        "JoinStats",
        Value::set(
            catalog
                .joins
                .iter()
                .map(|(key, j)| {
                    Value::record(vec![
                        ("key", Value::str(key)),
                        ("buildRows", int(j.build_rows)),
                        ("probeRows", int(j.probe_rows)),
                        ("probes", int(j.probes)),
                        ("matches", int(j.matches)),
                        (
                            "selectivity",
                            Value::Atomic(AtomicValue::Float(
                                j.selectivity().unwrap_or(UNDEFINED_SELECTIVITY),
                            )),
                        ),
                    ])
                })
                .collect(),
        ),
    );
    inst.install_root(
        "SetCardHist",
        Value::set(
            catalog
                .paths
                .iter()
                .flat_map(|(path, s)| {
                    s.set_card
                        .iter()
                        .enumerate()
                        .filter(|&(_, &count)| count > 0)
                        .map(move |(bucket, &count)| {
                            Value::record(vec![
                                ("path", Value::str(path)),
                                ("bucket", int(bucket as u64)),
                                ("lo", int(bucket_lower(bucket))),
                                ("hi", int(bucket_upper(bucket))),
                                ("count", int(count)),
                            ])
                        })
                })
                .collect(),
        ),
    );
    inst.annotate_elements(schema)
        .expect("stats instance conforms to stats schema by construction");
    span.record("nodes", inst.len());
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_obs::JoinStats;
    use dtr_query::eval::{Catalog, Evaluator, Source};
    use dtr_query::functions::FunctionRegistry;
    use dtr_query::parser::parse_query;

    fn sample_catalog() -> StatsCatalog {
        let mut c = StatsCatalog::new();
        c.record_set("US.houses", 2);
        c.record_set("US.houses", 3);
        c.record_value("US.houses.price", "450000");
        c.record_value("US.houses.price", "750000");
        c.record_value("US.houses.price", "450000");
        c.record_join(
            "US.agents.aid = US.houses.aid",
            JoinStats {
                build_rows: 2,
                probe_rows: 3,
                probes: 3,
                matches: 3,
            },
        );
        c.record_join(
            "EU.postings.hid = US.houses.hid",
            JoinStats {
                build_rows: 0,
                probe_rows: 0,
                probes: 0,
                matches: 0,
            },
        );
        c
    }

    #[test]
    fn stats_instance_is_queryable() {
        let schema = stats_schema();
        let inst = stats_instance(&sample_catalog(), &schema);
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        let q = parse_query(
            "select p.tuples, p.distinctEst
             from PathStats p
             where p.path = 'US.houses.price'",
        )
        .unwrap();
        let r = Evaluator::new(&catalog, &funcs).run(&q).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0][0], AtomicValue::Int(3));
        assert_eq!(r.tuples()[0][1], AtomicValue::Int(2));
    }

    #[test]
    fn join_selectivity_is_filterable() {
        let schema = stats_schema();
        let inst = stats_instance(&sample_catalog(), &schema);
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        // The undefined-selectivity join (no cross product) stores -1.0 and
        // is excluded by any non-negative predicate.
        let q = parse_query("select j.key from JoinStats j where j.selectivity > 0.4").unwrap();
        let r = Evaluator::new(&catalog, &funcs).run(&q).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(
            r.tuples()[0][0].to_string(),
            "US.agents.aid = US.houses.aid"
        );
    }

    #[test]
    fn histogram_rows_are_sparse() {
        let schema = stats_schema();
        let inst = stats_instance(&sample_catalog(), &schema);
        let catalog = Catalog::new(vec![Source {
            schema: &schema,
            instance: &inst,
        }]);
        let funcs = FunctionRegistry::with_builtins();
        let q = parse_query("select h.bucket, h.count from SetCardHist h").unwrap();
        let r = Evaluator::new(&catalog, &funcs).run(&q).unwrap();
        // Cardinalities 2 and 3 share the [2,4) bucket: exactly one sparse row.
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0][0], AtomicValue::Int(1));
        assert_eq!(r.tuples()[0][1], AtomicValue::Int(2));
    }

    #[test]
    fn round_trips_through_catalog_json() {
        let c = sample_catalog();
        let parsed = StatsCatalog::from_json_str(&c.to_json_string()).unwrap();
        let schema = stats_schema();
        assert_eq!(
            stats_instance(&c, &schema).len(),
            stats_instance(&parsed, &schema).len()
        );
    }
}
