//! Minimal XML text/attribute escaping.

/// Escapes text content (`&`, `<`, `>`).
pub fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            other => out.push(other),
        }
    }
}

/// Escapes attribute values (adds `"` to the text set).
pub fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
}

/// Reverses both escapings.
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let known = [
            ("&amp;", '&'),
            ("&lt;", '<'),
            ("&gt;", '>'),
            ("&quot;", '"'),
            ("&apos;", '\''),
        ];
        let mut matched = false;
        for (ent, ch) in known {
            if let Some(tail) = rest.strip_prefix(ent) {
                out.push(ch);
                rest = tail;
                matched = true;
                break;
            }
        }
        if !matched {
            out.push('&');
            rest = &rest[1..];
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trip() {
        let original = r#"a & b < c > d " e"#;
        let mut esc = String::new();
        escape_attr(original, &mut esc);
        assert!(!esc.contains('<'));
        assert_eq!(unescape(&esc), original);
    }

    #[test]
    fn text_escape_leaves_quotes() {
        let mut esc = String::new();
        escape_text("say \"hi\"", &mut esc);
        assert_eq!(esc, "say \"hi\"");
    }

    #[test]
    fn unknown_entity_passes_through() {
        assert_eq!(unescape("a &bogus; b"), "a &bogus; b");
    }
}
