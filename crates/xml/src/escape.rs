//! Minimal XML text/attribute escaping.

/// Escapes text content (`&`, `<`, `>`).
pub fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            other => out.push(other),
        }
    }
}

/// Escapes attribute values (adds `"` to the text set).
pub fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
}

/// Reverses both escapings.
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let known = [
            ("&amp;", '&'),
            ("&lt;", '<'),
            ("&gt;", '>'),
            ("&quot;", '"'),
            ("&apos;", '\''),
        ];
        let mut matched = false;
        for (ent, ch) in known {
            if let Some(tail) = rest.strip_prefix(ent) {
                out.push(ch);
                rest = tail;
                matched = true;
                break;
            }
        }
        if !matched {
            out.push('&');
            rest = &rest[1..];
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn escape_round_trip() {
        let original = r#"a & b < c > d " e"#;
        let mut esc = String::new();
        escape_attr(original, &mut esc);
        assert!(!esc.contains('<'));
        assert_eq!(unescape(&esc), original);
    }

    #[test]
    fn control_chars_round_trip() {
        // The escaper passes control characters through untouched; the
        // round trip must still be lossless.
        let original = "line1\nline2\ttab\u{1}end\r";
        for esc_fn in [escape_text, escape_attr] {
            let mut esc = String::new();
            esc_fn(original, &mut esc);
            assert_eq!(unescape(&esc), original);
        }
    }

    #[test]
    fn non_ascii_round_trip() {
        let original = "café 日本語 🗺 straße — ± <&> \"quoted\"";
        let mut esc = String::new();
        escape_attr(original, &mut esc);
        assert!(!esc.contains('<') && !esc.contains('"'));
        assert_eq!(unescape(&esc), original);
        let mut text = String::new();
        escape_text(original, &mut text);
        assert_eq!(unescape(&text), original);
    }

    #[test]
    fn apostrophe_entity_unescapes() {
        assert_eq!(unescape("it&apos;s"), "it's");
    }

    // A pool mixing markup characters, entity-prefix fragments, controls
    // and multi-byte sequences: the adversarial inputs for an escaper.
    const POOL: &[&str] = &[
        "&", "<", ">", "\"", "'", "&amp", "&#38;", ";", "a", " ", "\n", "\t", "\u{1}", "é", "日",
        "🦀",
    ];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn escape_unescape_is_identity(
            picks in prop::collection::vec(0usize..POOL.len(), 0..24)
        ) {
            let original: String = picks.iter().map(|&i| POOL[i]).collect();
            let mut text = String::new();
            escape_text(&original, &mut text);
            prop_assert_eq!(unescape(&text), original.clone());
            let mut attr = String::new();
            escape_attr(&original, &mut attr);
            prop_assert!(!attr.contains('<') && !attr.contains('"'));
            prop_assert_eq!(unescape(&attr), original);
        }
    }

    #[test]
    fn text_escape_leaves_quotes() {
        let mut esc = String::new();
        escape_text("say \"hi\"", &mut esc);
        assert_eq!(esc, "say \"hi\"");
    }

    #[test]
    fn unknown_entity_passes_through() {
        assert_eq!(unescape("a &bogus; b"), "a &bogus; b");
    }
}
