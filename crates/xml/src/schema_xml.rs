//! XML serialization of schemas — the flat `Element`-relation encoding of
//! Figure 5 rendered as XML, used for the Section 8 measurement of how much
//! space stored schemas (and mappings) add to the integrated instance
//! (~0.3 MB in the paper's scenario).

use crate::escape::escape_attr;
use crate::parser::{parse_document, XmlError};
use dtr_model::schema::{ElementId, ElementKind, Schema, SchemaError};
use dtr_model::types::Type;
use std::fmt::Write as _;

/// Serializes a schema as a flat element list:
///
/// ```xml
/// <schema db="Pdb">
///   <element id="e0" name="Portal" type="Rcd"/>
///   <element id="e1" name="estates" type="Set" parent="e0"/>
///   ...
/// </schema>
/// ```
pub fn schema_to_xml(schema: &Schema) -> String {
    let mut out = String::with_capacity(schema.len() * 48);
    let _ = write!(out, "<schema db=\"");
    escape_attr(schema.name(), &mut out);
    out.push_str("\">\n");
    for (id, el) in schema.elements() {
        let _ = write!(out, "  <element id=\"{id}\" name=\"");
        escape_attr(el.label.as_str(), &mut out);
        let _ = write!(out, "\" type=\"{}\"", el.kind);
        if let Some(p) = el.parent {
            let _ = write!(out, " parent=\"{p}\"");
        }
        out.push_str("/>\n");
    }
    out.push_str("</schema>\n");
    out
}

/// Reconstructs a schema from [`schema_to_xml`] output.
pub fn schema_from_xml(input: &str) -> Result<Schema, XmlError> {
    let doc = parse_document(input)?;
    if doc.name != "schema" {
        return Err(XmlError {
            offset: 0,
            message: format!("expected <schema>, found <{}>", doc.name),
        });
    }
    let db = doc.attr("db").unwrap_or("").to_owned();

    // Recover the element list, then rebuild types bottom-up.
    struct Row {
        name: String,
        kind: ElementKind,
        parent: Option<usize>,
        children: Vec<usize>,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(doc.children.len());
    for el in &doc.children {
        if el.name != "element" {
            return Err(XmlError {
                offset: 0,
                message: format!("unexpected <{}> in schema", el.name),
            });
        }
        let fail = |m: String| XmlError {
            offset: 0,
            message: m,
        };
        let id: usize = el
            .attr("id")
            .and_then(|s| s.strip_prefix('e'))
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| fail("bad element id".into()))?;
        if id != rows.len() {
            return Err(fail(format!("non-sequential element id e{id}")));
        }
        let kind = el
            .attr("type")
            .and_then(ElementKind::parse)
            .ok_or_else(|| fail("bad element type".into()))?;
        let parent: Option<usize> = match el.attr("parent") {
            Some(p) => Some(
                p.strip_prefix('e')
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| fail("bad parent id".into()))?,
            ),
            None => None,
        };
        rows.push(Row {
            name: el.attr("name").unwrap_or("").to_owned(),
            kind,
            parent,
            children: Vec::new(),
        });
    }
    for i in 0..rows.len() {
        if let Some(p) = rows[i].parent {
            if p >= rows.len() {
                return Err(XmlError {
                    offset: 0,
                    message: format!("dangling parent e{p}"),
                });
            }
            rows[p].children.push(i);
        }
    }

    fn type_of(rows: &[Row], i: usize) -> Type {
        match rows[i].kind {
            ElementKind::Atomic(a) => Type::Atomic(a),
            ElementKind::Record => Type::Record(
                rows[i]
                    .children
                    .iter()
                    .map(|&c| (rows[c].name.as_str().into(), type_of(rows, c)))
                    .collect(),
            ),
            ElementKind::Choice => Type::Choice(
                rows[i]
                    .children
                    .iter()
                    .map(|&c| (rows[c].name.as_str().into(), type_of(rows, c)))
                    .collect(),
            ),
            ElementKind::Set => {
                let member = rows[i].children.first().copied().unwrap_or(i);
                Type::Set(Box::new(type_of(rows, member)))
            }
        }
    }

    let roots: Vec<(String, Type)> = rows
        .iter()
        .enumerate()
        .filter(|(_, r)| r.parent.is_none())
        .map(|(i, r)| (r.name.clone(), type_of(&rows, i)))
        .collect();
    Schema::build(db, roots).map_err(|e: SchemaError| XmlError {
        offset: 0,
        message: e.to_string(),
    })
}

/// Sanity check that a serialized schema assigns the same ids — true for
/// every schema produced by [`Schema::build`], whose ids are depth-first.
pub fn ids_stable(schema: &Schema) -> bool {
    match schema_from_xml(&schema_to_xml(schema)) {
        Ok(back) => {
            back.len() == schema.len()
                && schema.elements().all(|(id, el)| {
                    back.get(ElementId(id.0))
                        .map(|b| b.label == el.label && b.kind == el.kind && b.parent == el.parent)
                        .unwrap_or(false)
                })
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_model::types::AtomicType;

    fn eu_schema() -> Schema {
        Schema::build(
            "EUdb",
            vec![(
                "EU",
                Type::record(vec![(
                    "postings",
                    Type::set(Type::record(vec![
                        ("hid", Type::string()),
                        ("levels", Type::string()),
                        ("totalVal", Type::string()),
                        (
                            "agents",
                            Type::set(Type::record(vec![
                                ("agentName", Type::string()),
                                ("agentPhone", Type::string()),
                            ])),
                        ),
                    ])),
                )]),
            )],
        )
        .unwrap()
    }

    #[test]
    fn figure_2_eu_schema_round_trip() {
        let s = eu_schema();
        // Figure 2 numbers EUdb as e0..e9 - ten elements.
        assert_eq!(s.len(), 10);
        let xml = schema_to_xml(&s);
        assert!(xml.contains("<element id=\"e0\" name=\"EU\" type=\"Rcd\"/>"));
        let back = schema_from_xml(&xml).unwrap();
        assert_eq!(back.name(), "EUdb");
        assert_eq!(back.len(), 10);
        assert!(ids_stable(&s));
    }

    #[test]
    fn choice_schema_round_trip() {
        let s = Schema::build(
            "USdb",
            vec![(
                "title",
                Type::choice(vec![("name", Type::string()), ("firm", Type::string())]),
            )],
        )
        .unwrap();
        assert!(ids_stable(&s));
        let xml = schema_to_xml(&s);
        assert!(xml.contains("type=\"Choice\""));
    }

    #[test]
    fn atomic_types_preserved() {
        let s = Schema::build(
            "X",
            vec![(
                "R",
                Type::relation(vec![
                    ("a", AtomicType::Integer),
                    ("b", AtomicType::Float),
                    ("c", AtomicType::Boolean),
                ]),
            )],
        )
        .unwrap();
        let back = schema_from_xml(&schema_to_xml(&s)).unwrap();
        let a = back.resolve_path("/R/a").unwrap();
        assert_eq!(
            back.element(a).kind,
            ElementKind::Atomic(AtomicType::Integer)
        );
        assert!(ids_stable(&s));
    }

    #[test]
    fn bad_documents_rejected() {
        assert!(schema_from_xml("<nope/>").is_err());
        assert!(schema_from_xml("<schema db=\"x\"><element id=\"e5\"/></schema>").is_err());
    }
}
