//! XML serialization of (annotated) instances — the storage format of the
//! Section 8 experiments.
//!
//! "Every XML element carries its annotations, which are represented as XML
//! attributes." The element annotation is written as `el="eN"`, the mapping
//! annotation as `map="m2 m3"`. The Partition-Normal-Form optimization of
//! Section 8 — "we were able to avoid storing mapping annotations on the
//! children of a complex type value since they are the same as the
//! annotations of their parents" — is available via
//! [`WriteOptions::pnf_suppression`].

use crate::escape::{escape_attr, escape_text};
use dtr_model::instance::{Instance, NodeData, NodeId};
use dtr_model::value::MappingName;
use std::fmt::Write as _;

/// The element name used for anonymous set members (`*` nodes).
pub const MEMBER_TAG: &str = "member";

/// Serialization options.
#[derive(Clone, Copy, Debug)]
pub struct WriteOptions {
    /// Write element annotations (`el="eN"`).
    pub element_annotations: bool,
    /// Write mapping annotations (`map="m2 m3"`).
    pub mapping_annotations: bool,
    /// Suppress a node's mapping annotation when it equals its parent's —
    /// sound for PNF instances (Section 8's space optimization).
    pub pnf_suppression: bool,
    /// Pretty-print with indentation. The experiments use compact output
    /// (sizes are compared, and indentation would dilute the ratios).
    pub indent: bool,
}

impl WriteOptions {
    /// No annotations at all (the plain instance).
    pub fn plain() -> Self {
        WriteOptions {
            element_annotations: false,
            mapping_annotations: false,
            pnf_suppression: false,
            indent: false,
        }
    }

    /// Full annotations on every element — the naive scheme whose overhead
    /// the paper measured at ~3 MB before optimization.
    pub fn annotated() -> Self {
        WriteOptions {
            element_annotations: true,
            mapping_annotations: true,
            pnf_suppression: false,
            indent: false,
        }
    }

    /// Annotations with the PNF suppression — the ~0.8 MB (5.5 %) scheme.
    pub fn annotated_pnf() -> Self {
        WriteOptions {
            pnf_suppression: true,
            ..Self::annotated()
        }
    }

    /// Mapping annotations only, on every element (the paper's *physical*
    /// annotation scheme before the PNF optimization: the element
    /// annotation is implicit in the XML structure and needs no bytes).
    pub fn mapping_only() -> Self {
        WriteOptions {
            element_annotations: false,
            mapping_annotations: true,
            pnf_suppression: false,
            indent: false,
        }
    }

    /// Mapping annotations with PNF suppression — the scheme whose overhead
    /// the paper reports as ~5.5 %.
    pub fn mapping_only_pnf() -> Self {
        WriteOptions {
            pnf_suppression: true,
            ..Self::mapping_only()
        }
    }
}

impl Default for WriteOptions {
    fn default() -> Self {
        Self::annotated_pnf()
    }
}

/// Written vs PNF-suppressed mapping-annotation attributes of one
/// serialization pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct WriteStats {
    written: u64,
    suppressed: u64,
}

/// Serializes an instance to XML.
pub fn instance_to_xml(inst: &Instance, opts: WriteOptions) -> String {
    let span = dtr_obs::span("xml.write").field("nodes", inst.len());
    let mut stats = WriteStats::default();
    let mut out = String::with_capacity(inst.len() * 24);
    let _ = writeln!(out, "<?xml version=\"1.0\"?>");
    let _ = write!(out, "<instance db=\"");
    escape_attr(inst.db(), &mut out);
    out.push_str("\">");
    if opts.indent {
        out.push('\n');
    }
    for &root in inst.roots() {
        write_node(inst, root, None, opts, 1, &mut out, &mut stats);
    }
    out.push_str("</instance>");
    out.push('\n');
    let c = dtr_obs::counters();
    c.xml_annotations_written.add(stats.written);
    c.xml_annotations_suppressed.add(stats.suppressed);
    span.record("annotations_written", stats.written);
    span.record("annotations_suppressed", stats.suppressed);
    out
}

fn write_node(
    inst: &Instance,
    id: NodeId,
    parent_maps: Option<&[MappingName]>,
    opts: WriteOptions,
    depth: usize,
    out: &mut String,
    stats: &mut WriteStats,
) {
    if opts.indent {
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
    let node = inst.node(id);
    let tag: &str = if node.label.is_star() {
        MEMBER_TAG
    } else {
        node.label.as_str()
    };
    out.push('<');
    out.push_str(tag);

    let annot = inst.annotation(id);
    if opts.element_annotations {
        if let Some(e) = annot.element {
            let _ = write!(out, " el=\"{e}\"");
        }
    }
    if opts.mapping_annotations && !annot.mappings.is_empty() {
        let suppress =
            opts.pnf_suppression && parent_maps.is_some_and(|pm| pm == annot.mappings.as_slice());
        if suppress {
            stats.suppressed += 1;
        } else {
            stats.written += 1;
            out.push_str(" map=\"");
            for (i, m) in annot.mappings.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                escape_attr(m.as_str(), out);
            }
            out.push('"');
        }
    }

    match &node.data {
        NodeData::Atomic(v) => {
            out.push('>');
            escape_text(&v.to_string(), out);
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
        NodeData::Record(_) | NodeData::Set(_) | NodeData::Choice(_) => {
            let kids = inst.children(id);
            if kids.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                if opts.indent {
                    out.push('\n');
                }
                for &c in kids {
                    write_node(inst, c, Some(&annot.mappings), opts, depth + 1, out, stats);
                }
                if opts.indent {
                    for _ in 0..depth {
                        out.push_str("  ");
                    }
                }
                out.push_str("</");
                out.push_str(tag);
                out.push('>');
            }
        }
    }
    if opts.indent {
        out.push('\n');
    }
}

/// Byte sizes of the same instance under the serialization schemes compared
/// in Section 8. The annotation bytes counted are the *mapping* annotations
/// (the element annotation is implicit in the XML structure, as in the
/// paper's storage).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeReport {
    /// XML without annotations.
    pub plain: usize,
    /// XML with mapping annotations on every element (the naive scheme,
    /// ~3 MB of overhead in the paper's run).
    pub annotated_naive: usize,
    /// XML with PNF-suppressed mapping annotations (~0.8 MB / 5.5 %).
    pub annotated_pnf: usize,
    /// XML with explicit element annotations too (not a paper scheme;
    /// useful for round-tripping tagged instances through files).
    pub full: usize,
}

impl SizeReport {
    /// Measures an instance.
    pub fn measure(inst: &Instance) -> SizeReport {
        SizeReport {
            plain: instance_to_xml(inst, WriteOptions::plain()).len(),
            annotated_naive: instance_to_xml(inst, WriteOptions::mapping_only()).len(),
            annotated_pnf: instance_to_xml(inst, WriteOptions::mapping_only_pnf()).len(),
            full: instance_to_xml(inst, WriteOptions::annotated()).len(),
        }
    }

    /// Annotation overhead of the naive scheme, as a fraction of the plain
    /// size.
    pub fn naive_overhead(&self) -> f64 {
        (self.annotated_naive - self.plain) as f64 / self.plain as f64
    }

    /// Annotation overhead with PNF suppression — the paper's ~5.5 %.
    pub fn pnf_overhead(&self) -> f64 {
        (self.annotated_pnf - self.plain) as f64 / self.plain as f64
    }

    /// Annotation bytes of the naive scheme.
    pub fn naive_annotation_bytes(&self) -> usize {
        self.annotated_naive - self.plain
    }

    /// Annotation bytes after PNF suppression.
    pub fn pnf_annotation_bytes(&self) -> usize {
        self.annotated_pnf - self.plain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_model::instance::Value;
    use dtr_model::schema::Schema;
    use dtr_model::types::{AtomicType, Type};

    fn annotated_instance() -> Instance {
        let schema = Schema::build(
            "Pdb",
            vec![(
                "contacts",
                Type::relation(vec![
                    ("title", AtomicType::String),
                    ("phone", AtomicType::String),
                ]),
            )],
        )
        .unwrap();
        let mut inst = Instance::new("Pdb");
        let root = inst.install_root(
            "contacts",
            Value::set(vec![Value::record(vec![
                ("title", Value::str("HomeGain")),
                ("phone", Value::str("18009468501")),
            ])]),
        );
        inst.annotate_elements(&schema).unwrap();
        // Same mapping set on the whole subtree (a PNF instance).
        for n in inst.walk() {
            inst.add_mapping(n, MappingName::new("m2"));
        }
        let member = inst.set_members(root).unwrap()[0];
        let title = inst.child_by_label(member, "title").unwrap();
        inst.add_mapping(title, MappingName::new("m3"));
        inst
    }

    #[test]
    fn plain_has_no_annotations() {
        let inst = annotated_instance();
        let xml = instance_to_xml(&inst, WriteOptions::plain());
        assert!(xml.contains("<title>HomeGain</title>"));
        assert!(!xml.contains("map="));
        assert!(!xml.contains("el="));
    }

    #[test]
    fn naive_annotates_every_element() {
        let inst = annotated_instance();
        let xml = instance_to_xml(&inst, WriteOptions::annotated());
        assert!(xml.contains("el=\"e0\""));
        assert!(xml.contains("map=\"m2\""));
        assert!(xml.contains("map=\"m2 m3\""));
        // member elements use the member tag
        assert!(xml.contains("<member"));
    }

    #[test]
    fn pnf_suppression_drops_inherited_annotations() {
        let inst = annotated_instance();
        let naive = instance_to_xml(&inst, WriteOptions::annotated());
        let pnf = instance_to_xml(&inst, WriteOptions::annotated_pnf());
        assert!(pnf.len() < naive.len());
        // The title node differs from its parent ({m2,m3} vs {m2}), so its
        // annotation must survive.
        assert!(pnf.contains("map=\"m2 m3\""));
        // The phone node matches its parent and is suppressed.
        assert!(!pnf.contains("phone map"));
        assert!(pnf.contains("<phone el="));
    }

    #[test]
    fn size_report_ordering() {
        let inst = annotated_instance();
        let r = SizeReport::measure(&inst);
        assert!(r.plain < r.annotated_pnf);
        assert!(r.annotated_pnf < r.annotated_naive);
        assert!(r.annotated_naive < r.full);
        assert!(r.pnf_overhead() < r.naive_overhead());
        assert!(r.naive_overhead() > 0.0);
        assert_eq!(r.naive_annotation_bytes(), r.annotated_naive - r.plain);
    }

    #[test]
    fn special_characters_escaped() {
        let mut inst = Instance::new("X");
        inst.install_root("r", Value::record(vec![("f", Value::str("a<b>&\"c"))]));
        let xml = instance_to_xml(&inst, WriteOptions::plain());
        assert!(xml.contains("a&lt;b&gt;&amp;\"c"));
    }

    #[test]
    fn indentation_mode() {
        let inst = annotated_instance();
        let xml = instance_to_xml(
            &inst,
            WriteOptions {
                indent: true,
                ..WriteOptions::plain()
            },
        );
        assert!(xml.contains("\n    <member>"));
    }
}
