//! A small XML reader for the dialect produced by [`crate::writer`] and
//! [`crate::schema_xml`].
//!
//! This is not a general-purpose XML parser; it supports exactly what the
//! repository needs for round-trips: elements, attributes, text content,
//! self-closing tags, the XML declaration, and the standard entities.
//!
//! Robustness contract: the library paths in this module are
//! `unwrap`/`expect`-free — every malformed input returns an [`XmlError`] —
//! and element recursion is bounded (`MAX_ELEMENT_DEPTH`, 128 levels) so
//! hostile nesting cannot overflow the stack.

use crate::escape::unescape;
use crate::writer::MEMBER_TAG;
use dtr_model::instance::{Instance, NodeData, NodeId};
use dtr_model::label::Label;
use dtr_model::schema::{ElementId, ElementKind, Schema};
use dtr_model::types::AtomicType;
use dtr_model::value::{AtomicValue, MappingName};
use std::fmt;

/// A parsed XML element.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct XmlNode {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Concatenated text content (children and text do not mix in our
    /// dialect).
    pub text: String,
    /// Child elements.
    pub children: Vec<XmlNode>,
}

impl XmlNode {
    /// Looks up an attribute.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

/// Maximum element nesting the reader accepts. Each open tag is one stack
/// frame (both here and in `build_node`, which mirrors the parsed tree), so
/// a hostile `<a><a><a>…` document would otherwise overflow the stack
/// instead of returning an [`XmlError`].
const MAX_ELEMENT_DEPTH: usize = 128;

struct Reader<'a> {
    input: &'a str,
    pos: usize,
    depth: usize,
}

impl<'a> Reader<'a> {
    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .input
            .as_bytes()
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn skip_prolog(&mut self) {
        self.skip_ws();
        while self.input[self.pos..].starts_with("<?") || self.input[self.pos..].starts_with("<!--")
        {
            if self.input[self.pos..].starts_with("<?") {
                if let Some(end) = self.input[self.pos..].find("?>") {
                    self.pos += end + 2;
                }
            } else if let Some(end) = self.input[self.pos..].find("-->") {
                self.pos += end + 3;
            }
            self.skip_ws();
        }
    }

    fn element(&mut self) -> Result<XmlNode, XmlError> {
        self.depth += 1;
        if self.depth > MAX_ELEMENT_DEPTH {
            self.depth -= 1;
            return Err(self.err(format!(
                "element nesting exceeds {MAX_ELEMENT_DEPTH} levels"
            )));
        }
        let result = self.element_unbounded();
        self.depth -= 1;
        result
    }

    fn element_unbounded(&mut self) -> Result<XmlNode, XmlError> {
        self.skip_ws();
        if !self.input[self.pos..].starts_with('<') {
            return Err(self.err("expected `<`"));
        }
        self.pos += 1;
        let name_start = self.pos;
        while self
            .input
            .as_bytes()
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_' || *b == b'-' || *b == b'.')
        {
            self.pos += 1;
        }
        if self.pos == name_start {
            return Err(self.err("expected element name"));
        }
        let mut node = XmlNode {
            name: self.input[name_start..self.pos].to_owned(),
            ..Default::default()
        };
        // Attributes.
        loop {
            self.skip_ws();
            match self.input.as_bytes().get(self.pos) {
                Some(b'/') => {
                    if self.input.as_bytes().get(self.pos + 1) == Some(&b'>') {
                        self.pos += 2;
                        return Ok(node);
                    }
                    return Err(self.err("stray `/`"));
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let astart = self.pos;
                    while self
                        .input
                        .as_bytes()
                        .get(self.pos)
                        .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_' || *b == b'-')
                    {
                        self.pos += 1;
                    }
                    if self.pos == astart {
                        return Err(self.err("expected attribute name"));
                    }
                    let aname = self.input[astart..self.pos].to_owned();
                    if self.input.as_bytes().get(self.pos) != Some(&b'=') {
                        return Err(self.err("expected `=`"));
                    }
                    self.pos += 1;
                    if self.input.as_bytes().get(self.pos) != Some(&b'"') {
                        return Err(self.err("expected `\"`"));
                    }
                    self.pos += 1;
                    let vstart = self.pos;
                    while self
                        .input
                        .as_bytes()
                        .get(self.pos)
                        .is_some_and(|b| *b != b'"')
                    {
                        self.pos += 1;
                    }
                    if self.input.as_bytes().get(self.pos) != Some(&b'"') {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let value = unescape(&self.input[vstart..self.pos]);
                    self.pos += 1;
                    node.attrs.push((aname, value));
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }
        // Content.
        loop {
            let text_start = self.pos;
            while self
                .input
                .as_bytes()
                .get(self.pos)
                .is_some_and(|b| *b != b'<')
            {
                self.pos += 1;
            }
            let text = &self.input[text_start..self.pos];
            if !text.trim().is_empty() || (node.children.is_empty() && !text.is_empty()) {
                node.text.push_str(&unescape(text));
            }
            if self.input[self.pos..].starts_with("</") {
                self.pos += 2;
                let cstart = self.pos;
                while self
                    .input
                    .as_bytes()
                    .get(self.pos)
                    .is_some_and(|b| *b != b'>')
                {
                    self.pos += 1;
                }
                let closing = &self.input[cstart..self.pos];
                if closing != node.name {
                    return Err(self.err(format!(
                        "mismatched closing tag `{closing}` (expected `{}`)",
                        node.name
                    )));
                }
                self.pos += 1;
                // Text-only elements: trim pure-whitespace around children.
                if !node.children.is_empty() {
                    node.text.clear();
                }
                return Ok(node);
            }
            if self.pos >= self.input.len() {
                return Err(self.err("unexpected end of input in content"));
            }
            node.children.push(self.element()?);
        }
    }
}

/// Parses a single XML document into its root element.
pub fn parse_document(input: &str) -> Result<XmlNode, XmlError> {
    let mut r = Reader {
        input,
        pos: 0,
        depth: 0,
    };
    r.skip_prolog();
    let root = r.element()?;
    r.skip_ws();
    if r.pos != input.len() {
        return Err(r.err("trailing content after document element"));
    }
    Ok(root)
}

/// Reconstructs an [`Instance`] from the XML produced by
/// [`crate::writer::instance_to_xml`], using `schema` to recover node kinds
/// and atomic types. Annotations (`el=`, `map=`) are restored when present.
pub fn instance_from_xml(input: &str, schema: &Schema) -> Result<Instance, XmlError> {
    let doc = parse_document(input)?;
    if doc.name != "instance" {
        return Err(XmlError {
            offset: 0,
            message: format!("expected <instance>, found <{}>", doc.name),
        });
    }
    let db = doc.attr("db").unwrap_or(schema.name()).to_owned();
    let mut inst = Instance::new(db);
    for child in &doc.children {
        let root_elem = schema.root(&child.name).ok_or_else(|| XmlError {
            offset: 0,
            message: format!("schema has no root `{}`", child.name),
        })?;
        build_node(child, root_elem, schema, &mut inst, None, true)?;
    }
    Ok(inst)
}

fn build_node(
    xml: &XmlNode,
    elem: ElementId,
    schema: &Schema,
    inst: &mut Instance,
    parent: Option<NodeId>,
    is_root: bool,
) -> Result<NodeId, XmlError> {
    let kind = schema.element(elem).kind;
    let label: Label = if xml.name == MEMBER_TAG {
        Label::star()
    } else {
        Label::new(&xml.name)
    };
    let data = match kind {
        ElementKind::Atomic(t) => NodeData::Atomic(parse_atomic(&xml.text, t)?),
        ElementKind::Record => NodeData::Record(Vec::new()),
        ElementKind::Set => NodeData::Set(Vec::new()),
        ElementKind::Choice => NodeData::Choice(None),
    };
    let id = inst.push_raw(label, parent, data, is_root);

    // Restore annotations.
    if let Some(el) = xml.attr("el") {
        let n: Option<u32> = el.strip_prefix('e').and_then(|s| s.parse().ok());
        if let Some(n) = n {
            inst.set_element(id, ElementId(n));
        }
    }
    if let Some(maps) = xml.attr("map") {
        for m in maps.split_whitespace() {
            inst.add_mapping(id, MappingName::new(m));
        }
    }

    let mut kids = Vec::with_capacity(xml.children.len());
    for child in &xml.children {
        let child_elem = match kind {
            ElementKind::Set => schema.set_member(elem).ok_or_else(|| XmlError {
                offset: 0,
                message: "set element without member".into(),
            })?,
            _ => schema.child(elem, &child.name).ok_or_else(|| XmlError {
                offset: 0,
                message: format!(
                    "schema element {} has no child `{}`",
                    schema.path(elem),
                    child.name
                ),
            })?,
        };
        kids.push(build_node(
            child,
            child_elem,
            schema,
            inst,
            Some(id),
            false,
        )?);
    }
    if !kids.is_empty() || matches!(kind, ElementKind::Record | ElementKind::Set) {
        inst.replace_children(id, kids);
    }
    Ok(id)
}

fn parse_atomic(text: &str, t: AtomicType) -> Result<AtomicValue, XmlError> {
    let fail = |m: String| XmlError {
        offset: 0,
        message: m,
    };
    Ok(match t {
        AtomicType::String => AtomicValue::Str(text.to_owned()),
        AtomicType::Integer => AtomicValue::Int(
            text.trim()
                .parse()
                .map_err(|_| fail(format!("bad integer `{text}`")))?,
        ),
        AtomicType::Float => AtomicValue::Float(
            text.trim()
                .parse()
                .map_err(|_| fail(format!("bad float `{text}`")))?,
        ),
        AtomicType::Boolean => AtomicValue::Bool(
            text.trim()
                .parse()
                .map_err(|_| fail(format!("bad boolean `{text}`")))?,
        ),
        AtomicType::Database => AtomicValue::Db(text.to_owned()),
        AtomicType::Mapping => AtomicValue::Map(MappingName::new(text)),
        AtomicType::Element => {
            let (db, path) = text.split_once(':').unwrap_or(("", text));
            AtomicValue::Elem(dtr_model::value::ElementRef::new(db, path))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{instance_to_xml, WriteOptions};
    use dtr_model::instance::Value;
    use dtr_model::types::Type;

    fn schema() -> Schema {
        Schema::build(
            "Pdb",
            vec![(
                "Portal",
                Type::record(vec![
                    (
                        "estates",
                        Type::relation(vec![
                            ("hid", AtomicType::String),
                            ("value", AtomicType::Integer),
                        ]),
                    ),
                    (
                        "contacts",
                        Type::relation(vec![
                            ("title", AtomicType::String),
                            ("phone", AtomicType::String),
                        ]),
                    ),
                ]),
            )],
        )
        .unwrap()
    }

    fn instance() -> Instance {
        let schema = schema();
        let mut inst = Instance::new("Pdb");
        inst.install_root(
            "Portal",
            Value::record(vec![
                (
                    "estates",
                    Value::set(vec![
                        Value::record(vec![
                            ("hid", Value::str("H<1>&")),
                            ("value", Value::int(500_000)),
                        ]),
                        Value::record(vec![
                            ("hid", Value::str("H2")),
                            ("value", Value::int(300_000)),
                        ]),
                    ]),
                ),
                (
                    "contacts",
                    Value::set(vec![Value::record(vec![
                        ("title", Value::str("HomeGain")),
                        ("phone", Value::str("18009468501")),
                    ])]),
                ),
            ]),
        );
        inst.annotate_elements(&schema).unwrap();
        for n in inst.walk() {
            inst.add_mapping(n, MappingName::new("m2"));
        }
        inst
    }

    #[test]
    fn parse_document_basics() {
        let doc = parse_document("<?xml version=\"1.0\"?><a x=\"1\"><b>hi</b><c/></a>").unwrap();
        assert_eq!(doc.name, "a");
        assert_eq!(doc.attr("x"), Some("1"));
        assert_eq!(doc.children.len(), 2);
        assert_eq!(doc.children[0].text, "hi");
        assert_eq!(doc.children[1].name, "c");
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(parse_document("<a><b></a></b>").is_err());
        assert!(parse_document("<a>").is_err());
        assert!(parse_document("<a></a><b></b>").is_err());
    }

    #[test]
    fn round_trip_plain() {
        let schema = schema();
        let inst = instance();
        let xml = instance_to_xml(&inst, WriteOptions::plain());
        let back = instance_from_xml(&xml, &schema).unwrap();
        assert_eq!(back.len(), inst.len());
        assert_eq!(back.db(), "Pdb");
        let portal = back.root("Portal").unwrap();
        assert_eq!(
            back.to_value(portal),
            inst.to_value(inst.root("Portal").unwrap())
        );
    }

    #[test]
    fn round_trip_annotated() {
        let schema = schema();
        let inst = instance();
        let xml = instance_to_xml(&inst, WriteOptions::annotated());
        let back = instance_from_xml(&xml, &schema).unwrap();
        // Every node's annotations survive.
        for (a, b) in inst.walk().into_iter().zip(back.walk()) {
            assert_eq!(inst.annotation(a), back.annotation(b));
        }
    }

    #[test]
    fn round_trip_indented() {
        let schema = schema();
        let inst = instance();
        let xml = instance_to_xml(
            &inst,
            WriteOptions {
                indent: true,
                ..WriteOptions::plain()
            },
        );
        let back = instance_from_xml(&xml, &schema).unwrap();
        assert_eq!(back.len(), inst.len());
    }

    #[test]
    fn typed_atoms_restored() {
        let schema = schema();
        let inst = instance();
        let xml = instance_to_xml(&inst, WriteOptions::plain());
        let back = instance_from_xml(&xml, &schema).unwrap();
        let mut back2 = back.clone();
        back2.annotate_elements(&schema).unwrap();
        let value_elem = schema.resolve_path("/Portal/estates/value").unwrap();
        let nodes = back2.interpretation(value_elem);
        assert!(nodes
            .iter()
            .any(|&n| back2.atomic(n) == Some(&AtomicValue::Int(500_000))));
    }

    #[test]
    fn malformed_attributes_rejected() {
        assert!(parse_document("<a x=1></a>").is_err()); // unquoted value
        assert!(parse_document("<a x=\"1></a>").is_err()); // unterminated
        assert!(parse_document("<a =\"1\"></a>").is_err()); // no name
        assert!(parse_document("<a/ >").is_err()); // stray slash
        assert!(parse_document("").is_err());
        assert!(parse_document("< a></a>").is_err()); // space before name
    }

    #[test]
    fn prolog_and_comments_skipped() {
        let doc = parse_document("<?xml version=\"1.0\"?><!-- hello --><a><b>1</b></a>").unwrap();
        assert_eq!(doc.name, "a");
        assert_eq!(doc.children[0].text, "1");
    }

    #[test]
    fn bad_typed_atoms_rejected() {
        let schema = schema();
        // `value` is Integer; text is not a number.
        let err = instance_from_xml(
            "<instance db=\"Pdb\"><Portal><estates><member><hid>H1</hid>\
             <value>abc</value></member></estates></Portal></instance>",
            &schema,
        )
        .unwrap_err();
        assert!(err.message.contains("bad integer"));
    }

    #[test]
    fn unknown_child_label_rejected() {
        let schema = schema();
        let err = instance_from_xml(
            "<instance db=\"Pdb\"><Portal><bogus/></Portal></instance>",
            &schema,
        )
        .unwrap_err();
        assert!(err.message.contains("no child"));
    }

    #[test]
    fn unknown_root_fails() {
        let schema = schema();
        let err = instance_from_xml("<instance db=\"X\"><Nope/></instance>", &schema).unwrap_err();
        assert!(err.message.contains("no root"));
    }

    #[test]
    fn deep_element_nesting_is_an_error_not_a_stack_overflow() {
        // 10k nested open tags would overflow the stack without the depth
        // bound; with it, the reader returns a structured error.
        let depth = 10_000;
        let mut doc = String::new();
        for _ in 0..depth {
            doc.push_str("<a>");
        }
        for _ in 0..depth {
            doc.push_str("</a>");
        }
        let err = parse_document(&doc).unwrap_err();
        assert!(
            err.message.contains("nesting exceeds"),
            "unexpected message: {}",
            err.message
        );
        // Reasonable real nesting stays accepted.
        let shallow = "<a>".repeat(16) + &"</a>".repeat(16);
        assert!(parse_document(&shallow).is_ok());
    }
}
