//! # dtr-xml — XML storage of schemas and annotated instances
//!
//! The Section 8 experiments of *Representing and Querying Data
//! Transformations* materialize the integrated instance as XML, with every
//! element carrying its annotations as XML attributes, and measure the size
//! overhead of doing so (~5.5 % with the Partition-Normal-Form suppression,
//! plus ~0.3 MB for the encoded schemas and mappings).
//!
//! * [`writer`] — annotated-instance serialization with the naive and the
//!   PNF-suppressed annotation schemes, plus [`writer::SizeReport`].
//! * [`parser`] — a small XML reader that round-trips the writer's output
//!   (instances are reconstructed against a schema).
//! * [`schema_xml`] — the flat element-list encoding of schemas.
//! * [`escape`] — entity escaping.

#![warn(missing_docs)]

pub mod escape;
pub mod parser;
pub mod schema_xml;
pub mod writer;

/// Convenient glob-import of the most used names.
pub mod prelude {
    pub use crate::parser::{instance_from_xml, parse_document, XmlError, XmlNode};
    pub use crate::schema_xml::{schema_from_xml, schema_to_xml};
    pub use crate::writer::{instance_to_xml, SizeReport, WriteOptions};
}

pub use prelude::*;
