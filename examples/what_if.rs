//! What-if analysis (the introduction's motivation: "reason about the
//! impact of the data coming from specific sources").
//!
//! With `f_mp` materialized, "what would the portal lose if source X went
//! away?" is a pure annotation computation: a value survives iff some
//! non-removed mapping also generated it.
//!
//! ```text
//! cargo run --release --example what_if
//! ```

use dtr::core::whatif::{impact_of_mappings, impact_of_source};
use dtr::mapping::lint::lint_mappings;
use dtr::model::schema::Schema;
use dtr::model::value::MappingName;
use dtr::portal::scenario::{build, ScenarioConfig};

fn main() {
    let scenario = build(ScenarioConfig {
        listings_per_source: 100,
        overlap: 0.2,
        ..Default::default()
    });
    // Lint the mappings before doing anything else — the automated version
    // of the paper's Section 8 debugging sessions.
    println!("=== Mapping diagnostics ===\n");
    let schemas: Vec<&Schema> = scenario.setting.source_schemas().iter().collect();
    let lints = lint_mappings(
        scenario.setting.mappings(),
        &schemas,
        scenario.setting.target_schema(),
    )
    .expect("lint runs");
    let mut shown = 0;
    for l in &lints {
        // The portal deliberately has many unpopulated extended attributes;
        // show a sample of each category.
        let text = l.to_string();
        if shown < 12 {
            println!("  - {text}");
            shown += 1;
        }
    }
    println!("  ({} findings total)\n", lints.len());

    let tagged = scenario.exchange().expect("exchange succeeds");

    println!("=== What if a source disappeared? ===\n");
    for db in ["Yahoo", "NKdb", "WMdb", "WFdb", "HSdb"] {
        let impact = impact_of_source(&tagged, db);
        println!(
            "  without {db:<6}: {:>6} values lost ({:>5.1} %), {:>6} survive via other sources",
            impact.lost_values,
            100.0 * impact.lost_fraction(),
            impact.surviving_values
        );
    }

    println!("\n=== What if mappings were retired? ===\n");
    // A single mapping of a pair loses nothing: its sibling assigns the
    // same contract (the annotations prove it). Retiring the pair hurts.
    let impact = impact_of_mappings(&tagged, &[MappingName::new("y1")]);
    println!(
        "  without y1 alone: {} values lost (y2 covers the same contract)",
        impact.lost_values
    );
    for ms in [["y1", "y2"], ["nk1", "nk2"], ["hs1", "hs2"]] {
        let removed: Vec<MappingName> = ms.iter().map(|m| MappingName::new(*m)).collect();
        let impact = impact_of_mappings(&tagged, &removed);
        println!(
            "  without {}+{}: {:>6} values lost; top affected elements:",
            ms[0], ms[1], impact.lost_values
        );
        for (path, n) in impact.lost_by_element.iter().take(3) {
            println!("      {path}  ({n})");
        }
    }

    // Overlap means some values survive a whole source's removal.
    let impact = impact_of_source(&tagged, "WMdb");
    println!(
        "\nWith 20 % overlap, removing Windermere still leaves {} of its shared \
         values alive through Westfall/Homeseekers copies.",
        impact.surviving_values
    );
}
