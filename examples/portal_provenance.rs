//! The Section 2 motivating scenario, at scale.
//!
//! A user asks the integrated portal for expensive houses. Whether a price
//! includes tax depends on the originating source — information the portal
//! schema does not record. MXQL recovers it from the tagged instance.
//!
//! ```text
//! cargo run --release --example portal_provenance
//! ```

use dtr::portal::scenario::{tagged, ScenarioConfig};

fn main() {
    let t = tagged(ScenarioConfig {
        listings_per_source: 100,
        ..Default::default()
    });
    println!(
        "integrated portal: {} values from 5 sources through {} mappings\n",
        t.target().len(),
        t.setting().mappings().len()
    );

    // The naive query of Section 2: "select * from Portal.estates where
    // value > 500K". Some of these prices include tax, some do not — and
    // nothing in the result says which.
    let naive = t
        .query("select h.hid, h.price from Portal.houses h where h.price > 1400000")
        .expect("query runs");
    println!(
        "houses above $1.4M (plain query, provenance lost): {} results",
        naive.len()
    );

    // The MXQL version returns, along with every price, the mappings that
    // produced it; the mapping identities reveal the source.
    let with_maps = t
        .query(
            "select h.hid, h.price, m
             from Portal.houses h, h.price@map m
             where h.price > 1400000",
        )
        .expect("MXQL runs");
    println!("\nsame query with provenance (price, generating mapping):");
    for row in with_maps.tuples().iter().take(12) {
        println!("  {:<8} {:>9}  via {}", row[0], row[1], row[2]);
    }
    if with_maps.len() > 12 {
        println!("  ... {} rows total", with_maps.len());
    }

    // Restrict to prices that ORIGINATE from NK Realtors — the source whose
    // prices include tax in the motivating story. The mapping predicate
    // constrains the generating mapping to ones copying NK's askingPrice.
    let nk_only = t
        .query(
            "select h.hid, h.price, m
             from Portal.houses h, h.price@map m
             where h.price > 1400000 and e = h.price@elem
               and <'NKdb':'/NK/properties/askingPrice' -> m -> 'Portal':e>",
        )
        .expect("MXQL runs");
    println!(
        "\nof those, prices that came from NK Realtors (tax included): {}",
        nk_only.len()
    );
    for row in nk_only.tuples().iter().take(6) {
        println!("  {:<8} {:>9}  via {}", row[0], row[1], row[2]);
    }

    // And the Yahoo-originated ones (tax not included).
    let yahoo_only = t
        .query(
            "select h.hid, h.price
             from Portal.houses h, h.price@map m
             where h.price > 1400000 and e = h.price@elem
               and <'Yahoo':'/Yahoo/listings/price' -> m -> 'Portal':e>",
        )
        .expect("MXQL runs");
    println!(
        "prices that came from Yahoo (tax NOT included): {}",
        yahoo_only.distinct_tuples().len()
    );

    // The two phone slots of a Yahoo house hold the same source value —
    // the paper's "mapped to both the business and the home phone".
    let phones = t
        .query(
            "select h.contact.businessPhone, h.contact.homePhone
             from Portal.houses h where h.hid = 'H1000'",
        )
        .expect("query runs");
    let row = &phones.tuples()[0];
    println!(
        "\nYahoo house H1000: businessPhone={} homePhone={} (one source value, two targets)",
        row[0], row[1]
    );
}
