//! Quickstart: the paper's running example end to end.
//!
//! Builds the Figure 1 mapping scenario (USdb + EUdb → Pdb), executes the
//! mappings to materialize the annotated portal of Figure 3, and runs the
//! MXQL queries of Examples 5.4–5.6.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dtr::core::testkit;
use dtr::model::display::{render_instance, RenderOptions};

fn main() {
    // 1. The mapping setting <{USdb, EUdb}, Pdb, {m1, m2, m3}> of Figure 1.
    let setting = testkit::figure1_setting();
    println!("=== The mappings of Figure 1 ===\n");
    for m in setting.mappings() {
        println!("{m}\n");
    }

    // 2. Execute the mappings: the exchange engine materializes the portal
    //    and annotates every value with its schema element (f_el) and the
    //    mappings that generated it (f_mp).
    let tagged = testkit::figure1();
    println!("=== The annotated portal instance (Figure 3) ===\n");
    println!(
        "{}",
        render_instance(
            tagged.target(),
            Some(tagged.setting().target_schema()),
            RenderOptions::annotated()
        )
    );

    // 3. Example 5.4: for each price, through what transformation was it
    //    generated?
    println!("=== Example 5.4: which mapping generated each value? ===\n");
    let r = tagged
        .query("select x.hid, x.value, m from Portal.estates x, x.value@map m")
        .expect("MXQL runs");
    print!("{}", r.to_table());

    // 4. Example 5.5: estates whose contact is a USdb *firm* — information
    //    the portal schema itself cannot express.
    println!("\n=== Example 5.5: estates listed by a USdb firm ===\n");
    let r = tagged
        .query(
            "select s.hid, m
             from Portal.estates s, Portal.contacts c, c.title@map m
             where s.contact = c.title and e = c.title@elem
               and <'USdb':'US/agents/title/firm' -> m -> 'Pdb':e>",
        )
        .expect("MXQL runs");
    print!("{}", r.to_table());

    // 5. Example 5.6: what does `stories` mean? Ask where its values come
    //    from — the answer (floors, levels) settles it.
    println!("\n=== Example 5.6: where do `stories` values originate? ===\n");
    let r = tagged
        .query("select e from where <db:e -> m -> 'Pdb':'/Portal/estates/estate/stories'>")
        .expect("MXQL runs");
    print!("{}", r.to_table());

    println!("\nDone. See the `portal_provenance` and `debug_mappings` examples for");
    println!("the full Section 8 scenario, and `metadata_explorer` for Section 7.");
}
