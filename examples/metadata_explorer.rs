//! Section 7 end to end: the meta-data storage schema and the MXQL
//! translation pipeline.
//!
//! Encodes the Figure 1 schemas and mappings into the seven storage
//! relations (reproducing Figure 5), shows the Example 7.3→7.5 translation
//! chain, and demonstrates that the direct (Section 5) and translated
//! (Section 7) execution paths agree.
//!
//! ```text
//! cargo run --example metadata_explorer
//! ```

use dtr::core::runner::{canonical_rows, MetaRunner};
use dtr::core::testkit;
use dtr::core::translate::translate;
use dtr::query::parser::parse_query;

fn main() {
    let tagged = testkit::figure1();
    let runner = MetaRunner::new(tagged.setting()).expect("metastore builds");

    // Figure 5: the storage relations for the Figure 1 scenario.
    println!("=== The meta-data storage (Figures 4-5) ===\n");
    println!("{}", runner.store().render());

    // The Example 5.5 query through the translation chain.
    let text = "select s.hid, m
from Portal.estates s, Portal.contacts c, c.title@map m
where s.contact = c.title and e = c.title@elem
  and <'USdb':'US/agents/title/firm' -> m -> 'Pdb':e>";
    println!("=== MXQL query (Example 5.5) ===\n\n{text}\n");
    let q = parse_query(text).expect("parses");
    let branches = translate(&q, "Pdb").expect("translates");
    println!("=== Translated form (Examples 7.3-7.5) ===\n");
    for (i, b) in branches.iter().enumerate() {
        if branches.len() > 1 {
            println!("-- union branch {} --", i + 1);
        }
        println!("{b}\n");
    }

    // Both execution paths agree.
    let direct = tagged.query(text).expect("direct evaluation");
    let translated = runner.query(&tagged, text).expect("translated evaluation");
    println!("=== Results ===\n");
    println!(
        "direct (Section 5 semantics):    {:?}",
        canonical_rows(&direct)
    );
    println!(
        "translated (Section 7 pipeline): {:?}",
        canonical_rows(&translated)
    );
    assert_eq!(canonical_rows(&direct), canonical_rows(&translated));

    // A double-arrow query translates to a union of conjunctive queries.
    let dtext = "select es from where <'USdb':es => m => 'Pdb':'/Portal/estates/value'>";
    let dq = parse_query(dtext).expect("parses");
    let dbranches = translate(&dq, "Pdb").expect("translates");
    println!(
        "\n=== Double-arrow translation: {} union branches ===",
        dbranches.len()
    );
    println!("(the select-or-where disjunction of the what-provenance predicate");
    println!(" cannot be expressed in one conjunctive query)\n");
    let r = tagged.query(dtext).expect("runs");
    println!("elements affecting /Portal/estates/value:");
    for row in r.distinct_tuples() {
        println!("  {}", row[0]);
    }

    // Pure meta-data querying: no instance data touched at all.
    println!("\n=== Pure meta-data query over the storage relations ===\n");
    let q = parse_query(
        "select m.mid, e.path
         from Mapping m, Correspondence o, Element e
         where o.mid = m.mid and o.forEid = e.eid and e.db = 'EUdb'",
    )
    .expect("parses");
    let mut catalog = tagged.catalog();
    catalog.push(runner.meta_source());
    let r = dtr::query::eval::Evaluator::new(&catalog, tagged.functions())
        .run(&q)
        .expect("runs");
    println!("EUdb elements used by mapping select clauses:");
    print!("{}", r.to_table());
}
