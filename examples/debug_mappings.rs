//! The two mapping-debugging sessions of Section 8.
//!
//! 1. **housesInNeighborhood** — neighbors sometimes come from different
//!    cities. The double-arrow query shows `neighborhood` affects the
//!    element without being copied into it; the metastore reveals the
//!    self-join joins on neighborhood alone; the fixed mapping joins on
//!    city, state and neighborhood.
//! 2. **schoolDistrict** — some houses have identical elementary/middle/
//!    high districts. The single-arrow query shows all three retrieve
//!    their values from NK Realtors' single `schoolDistrict` element.
//!
//! ```text
//! cargo run --release --example debug_mappings
//! ```

use dtr::core::runner::MetaRunner;
use dtr::core::tagged::TaggedInstance;
use dtr::portal::scenario::{tagged, ScenarioConfig};
use dtr::query::eval::Evaluator;
use dtr::query::parser::parse_query;

fn cross_city_pairs(t: &TaggedInstance) -> (usize, usize) {
    let all = t
        .query("select h.hid, h.city from Portal.houses h")
        .expect("query runs");
    let mut city_of = std::collections::HashMap::new();
    for row in all.tuples() {
        city_of.insert(row[0].to_string(), row[1].to_string());
    }
    let pairs = t
        .query("select h.hid, h.city, b.hid from Portal.houses h, h.housesInNeighborhood b")
        .expect("query runs");
    let cross = pairs
        .tuples()
        .iter()
        .filter(|row| {
            city_of
                .get(&row[2].to_string())
                .is_some_and(|c| *c != row[1].to_string())
        })
        .count();
    (pairs.len(), cross)
}

fn join_elements(t: &TaggedInstance) -> Vec<String> {
    let runner = MetaRunner::new(t.setting()).expect("metastore builds");
    let mut catalog = t.catalog();
    catalog.push(runner.meta_source());
    let q = parse_query(
        "select e.name from Mapping m, Condition c, Element e
         where m.mid = 'hs2' and c.qid = m.forQ and c.eid = e.eid",
    )
    .unwrap();
    let r = Evaluator::new(&catalog, t.functions())
        .run(&q)
        .expect("metadata query runs");
    let mut names: Vec<String> = r.tuples().iter().map(|t| t[0].to_string()).collect();
    names.sort();
    names.dedup();
    names
}

fn main() {
    println!("=== Case 1: housesInNeighborhood (Section 8) ===\n");
    let buggy = tagged(ScenarioConfig {
        listings_per_source: 80,
        buggy_neighborhood_join: true,
        ..Default::default()
    });
    let (total, cross) = cross_city_pairs(&buggy);
    println!(
        "with the original mapping: {total} neighbor pairs, {cross} cross-city \
         ({:.1} %) — houses 'in the neighborhood' from other states!",
        100.0 * cross as f64 / total.max(1) as f64
    );

    // Step 1 — the paper's investigation query: what affects the element?
    let r = buggy
        .query(
            "select db, e from where
               <db:e => m => 'Portal':'/Portal/houses/housesInNeighborhood/hid'>",
        )
        .expect("MXQL runs");
    println!("\nwhat affects housesInNeighborhood/hid (double arrow)?");
    for row in r.distinct_tuples() {
        println!("  {}", row[1]);
    }

    // Step 2 — which elements are merely *copied* (single arrow)?
    let r = buggy
        .query(
            "select e from where
               <db:e -> m -> 'Portal':'/Portal/houses/housesInNeighborhood/hid'>",
        )
        .expect("MXQL runs");
    println!("\ncopied into it (single arrow)?");
    for row in r.distinct_tuples() {
        println!("  {}", row[0]);
    }

    // Step 3 — the join condition of the mapping, from the metastore.
    println!(
        "\nhs2's self-join condition elements: {:?}",
        join_elements(&buggy)
    );
    println!("  -> the join is on `neighborhood` alone; neighborhoods with the");
    println!("     same name exist in different cities, generating misleading data.");

    let fixed = tagged(ScenarioConfig {
        listings_per_source: 80,
        buggy_neighborhood_join: false,
        ..Default::default()
    });
    let (total, cross) = cross_city_pairs(&fixed);
    println!(
        "\nafter fixing the mapping (join on city, state, neighborhood): \
         {total} pairs, {cross} cross-city"
    );
    println!("fixed hs2's join elements: {:?}", join_elements(&fixed));

    println!("\n=== Case 2: schoolDistrict accuracy (Section 8) ===\n");
    let t = tagged(ScenarioConfig {
        listings_per_source: 80,
        ..Default::default()
    });
    let equal = t
        .query(
            "select h.hid from Portal.houses h
             where h.schools.elementary = h.schools.middle
               and h.schools.middle = h.schools.high",
        )
        .expect("query runs");
    let total = t
        .query("select h.hid from Portal.houses h")
        .expect("query runs");
    println!(
        "houses whose three school districts are identical: {} of {}",
        equal.len(),
        total.len()
    );
    println!("\nwhere do the three school elements get NK-originated values from?");
    for target in [
        "/Portal/houses/schools/elementary",
        "/Portal/houses/schools/middle",
        "/Portal/houses/schools/high",
    ] {
        let r = t
            .query(&format!(
                "select e from where <'NKdb':e -> m -> 'Portal':'{target}'>"
            ))
            .expect("MXQL runs");
        for row in r.distinct_tuples() {
            println!("  {target}  <-  {}", row[0]);
        }
    }
    println!("\nall three retrieve from the single `schoolDistrict` element — the");
    println!("NK Realtors source does not separate elementary, middle and high school");
    println!("districts, exactly the accuracy issue the paper reports.");
}
