//! Offline drop-in replacement for the subset of `proptest` this workspace
//! uses: integer-range / tuple / array / mapped / collection strategies, the
//! [`proptest!`] test-harness macro with `#![proptest_config(...)]`, and the
//! `prop_assert!` family.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! generated inputs verbatim), and generation is deterministic per test name
//! so CI failures reproduce locally without persistence files.

pub mod test_runner {
    /// Runner configuration. Only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    /// The `PROPTEST_CASES` environment override, if set and parseable.
    ///
    /// Unlike upstream (which only consults the variable in `default()`),
    /// the override also applies to explicit `with_cases(n)` configurations
    /// so that one variable uniformly scales every property suite in the
    /// workspace: small values keep CI fast, large values drive local soak
    /// runs deep.
    fn env_cases() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.trim().parse().ok()
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases: env_cases().unwrap_or(cases),
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig::with_cases(64)
        }
    }

    /// Deterministic splitmix64 generator used to drive strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary byte string (the test's name), so every
        /// test draws an independent, reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut state = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                state ^= u64::from(b);
                state = state.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state }
        }

        /// Seed from a numeric seed — the deterministic-soak entry point
        /// (e.g. `dtr-check --seed N`): equal seeds draw equal streams.
        pub fn from_seed(seed: u64) -> Self {
            let mut rng = TestRng {
                state: seed ^ 0xcbf2_9ce4_8422_2325,
            };
            // One warm-up step so small consecutive seeds decorrelate.
            rng.next_u64();
            rng
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64 + 1;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

    impl<S: Strategy, const N: usize> Strategy for [S; N] {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|i| self[i].generate(rng))
        }
    }

    /// Strategy for a type's canonical value distribution (see [`crate::arbitrary::any`]).
    #[derive(Clone, Debug)]
    pub struct Any<T> {
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Any;
    use crate::test_runner::TestRng;

    /// Types with a canonical generation recipe.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The canonical strategy for `T`, e.g. `any::<bool>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length bounds for collection strategies.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// The result of [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min).max(1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element_strategy, 0..8)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), left, right
            ));
        }
    }};
}

/// Fail the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            ));
        }
    }};
}

/// Declare property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u8..4, v in some_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest_internal!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest_internal!(
            ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! proptest_internal {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])+
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let inputs = format!("{:?}", ($(&$arg,)*));
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs: {}",
                        case + 1, config.cases, message, inputs
                    );
                }
            }
        }
        $crate::proptest_internal!(($config); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u8, u8)> {
        (0u8..4, 0u8..4)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -5i64..=5, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!(u8::from(b) <= 1);
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0u8..4, 0u8..4).prop_map(|(a, b)| a + b), 0..8),
            arr in [0usize..4, 0usize..4, 0usize..4],
            tup in pair(),
        ) {
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&x| x <= 6));
            prop_assert!(arr.iter().all(|&x| x < 4));
            prop_assert!(tup.0 < 4 && tup.1 < 4);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unreachable_code)]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
