//! Offline drop-in replacement for the subset of `rand` 0.8 this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over integer `Range`/`RangeInclusive` bounds.
//!
//! The generator is xoshiro256** seeded through splitmix64 — deterministic
//! for a fixed seed, which is the property the portal scenario generator
//! relies on (the exact stream differs from upstream `rand`, so generated
//! datasets are stable per-seed but not bit-identical to the real crate).

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds. Only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 of any seed
            // cannot produce four zeros, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(2004);
        let mut b = StdRng::seed_from_u64(2004);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(2005);
        let same: usize = (0..100)
            .filter(|_| a.gen_range(0u64..1_000_000) == c.gen_range(0u64..1_000_000))
            .count();
        assert!(same < 5, "different seeds should diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(1u32..=1);
            assert_eq!(z, 1);
        }
        // Coverage: every value of a small range appears.
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
