//! Offline drop-in replacement for the subset of `criterion` this workspace
//! uses: `Criterion`, benchmark groups, `bench_function` /
//! `bench_with_input`, `Bencher::iter` / `iter_batched`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are deliberately simple — warm up once, time `sample_size`
//! runs, report min/median/mean — which is enough for the relative
//! comparisons EXPERIMENTS.md makes. No plotting, no outlier analysis.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized. Accepted for API compatibility; the stub
/// always runs one batch of one input per sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times the closure the benchmark hands it.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
    }
}

fn run_samples(sample_size: usize, mut f: impl FnMut(&mut Bencher)) -> Vec<Duration> {
    // Warm-up run, discarded.
    let mut warmup = Bencher {
        elapsed: Duration::ZERO,
    };
    f(&mut warmup);
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed);
    }
    samples
}

fn report(name: &str, samples: &mut [Duration]) {
    samples.sort_unstable();
    let min = samples.first().copied().unwrap_or_default();
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len().max(1) as u32;
    println!(
        "{name:<50} time: [min {} | median {} | mean {}] ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let mut samples = run_samples(self.sample_size, f);
        report(&full, &mut samples);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let mut samples = run_samples(self.sample_size, |b| f(b, input));
        report(&full, &mut samples);
        self
    }

    pub fn finish(&mut self) {}
}

/// The top-level harness handle passed to each `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = id.to_string();
        let mut samples = run_samples(self.sample_size, f);
        report(&full, &mut samples);
        self
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benchers_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_function("iter", |b| {
            b.iter(|| {
                runs += 1;
                (0..100u64).sum::<u64>()
            })
        });
        // 1 warmup + 3 samples.
        assert_eq!(runs, 4);
        g.bench_with_input(BenchmarkId::new("sized", 42), &42u64, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::LargeInput)
        });
        g.finish();
    }
}
