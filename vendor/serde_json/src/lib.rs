//! Offline drop-in replacement for the subset of `serde_json` this workspace
//! uses: the [`Value`] tree, an insertion-ordered [`Map`], the [`json!`]
//! macro, compact/pretty printers and a strict JSON parser ([`from_str`]).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the handful of third-party API surfaces it needs as
//! small local crates. This one is behaviour-compatible for the operations
//! the repo performs (construct → print → parse → compare); it does not
//! implement serde's `Serialize`/`Deserialize` traits.

use std::fmt;

/// A JSON number: integers are kept exact so counters round-trip losslessly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// Anything with a fractional part or exponent.
    Float(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(_) | Number::Float(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(x) => {
                if x.is_finite() {
                    // Mirror serde_json: floats always carry a decimal point
                    // or exponent so they re-parse as floats.
                    if x == x.trunc() && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    // serde_json prints non-finite floats as null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// An insertion-ordered string→value map (like serde_json's `preserve_order`
/// feature, which this repo's output formatting relies on).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert, replacing any existing entry with the same key in place.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// A JSON value tree.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// `value["key"]`-style lookup without panicking; returns `None` on any
    /// type mismatch.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Number(Number::Float(f))
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Self {
        Value::Number(Number::Float(f as f64))
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self {
                Value::Number(Number::PosInt(n as u64))
            }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, usize);

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self {
                if n >= 0 {
                    Value::Number(Number::PosInt(n as u64))
                } else {
                    Value::Number(Number::NegInt(n as i64))
                }
            }
        }
    )*};
}
from_signed!(i8, i16, i32, i64, isize);

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Self {
        Value::String(s.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Self {
        match o {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

/// Build a [`Value`] from JSON-ish syntax, mirroring `serde_json::json!`.
///
/// Supports nested objects/arrays, `null`, and arbitrary Rust expressions in
/// value position (anything with `Into<Value>`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([]) => { $crate::Value::Array(Vec::new()) };
    ([ $($tt:tt)+ ]) => { $crate::json_array_internal!([] $($tt)+) };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut object = $crate::Map::new();
        $crate::json_object_internal!(object () $($tt)+);
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Internal: accumulate array elements (top-level commas separate elements;
/// commas nested in `()`/`[]`/`{}` token trees are untouched).
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_internal {
    // Finished accumulating every element.
    ([ $($elems:expr,)* ]) => {
        $crate::Value::Array(vec![ $($elems,)* ])
    };
    // Trailing comma already folded in; done.
    ([ $($elems:expr,)* ] ,) => {
        $crate::Value::Array(vec![ $($elems,)* ])
    };
    // Next element is `null`.
    ([ $($elems:expr,)* ] null $($rest:tt)*) => {
        $crate::json_array_internal!([ $($elems,)* $crate::json!(null), ] $($rest)*)
    };
    // Next element is an array.
    ([ $($elems:expr,)* ] [ $($inner:tt)* ] $($rest:tt)*) => {
        $crate::json_array_internal!([ $($elems,)* $crate::json!([ $($inner)* ]), ] $($rest)*)
    };
    // Next element is an object.
    ([ $($elems:expr,)* ] { $($inner:tt)* } $($rest:tt)*) => {
        $crate::json_array_internal!([ $($elems,)* $crate::json!({ $($inner)* }), ] $($rest)*)
    };
    // Next element is an expression followed by a comma.
    ([ $($elems:expr,)* ] $next:expr, $($rest:tt)*) => {
        $crate::json_array_internal!([ $($elems,)* $crate::json!($next), ] $($rest)*)
    };
    // Last element: an expression with nothing after it.
    ([ $($elems:expr,)* ] $last:expr) => {
        $crate::Value::Array(vec![ $($elems,)* $crate::json!($last) ])
    };
    // Comma after a bracketed element.
    ([ $($elems:expr,)* ] , $($rest:tt)*) => {
        $crate::json_array_internal!([ $($elems,)* ] $($rest)*)
    };
}

/// Internal: accumulate object entries. The value is munched token-by-token
/// until a top-level comma (or end of input), then recursed through `json!`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    // Done.
    ($object:ident ()) => {};
    // Key found: start munching its value.
    ($object:ident () $key:tt : $($rest:tt)*) => {
        $crate::json_object_internal!(@value $object $key () $($rest)*)
    };
    // Value complete at a top-level comma: insert and continue.
    (@value $object:ident $key:tt ($($value:tt)+) , $($rest:tt)*) => {
        $object.insert(($key).to_string(), $crate::json!($($value)+));
        $crate::json_object_internal!($object () $($rest)*)
    };
    // Value complete at end of input: insert and stop.
    (@value $object:ident $key:tt ($($value:tt)+)) => {
        $object.insert(($key).to_string(), $crate::json!($($value)+));
    };
    // Otherwise: move one token into the value accumulator.
    (@value $object:ident $key:tt ($($value:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_object_internal!(@value $object $key ($($value)* $next) $($rest)*)
    };
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const STEP: usize = 2;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(out, item, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_compact(&mut out, self);
        f.write_str(&out)
    }
}

/// Serialize a value as compact JSON. Infallible for `Value` input; the
/// `Result` mirrors the serde_json signature.
pub fn to_string(value: &Value) -> Result<String, Error> {
    Ok(value.to_string())
}

/// Serialize a value as human-indented JSON.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    Ok(out)
}

/// A parse error with byte position context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
    pos: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.pos)
    }
}

impl std::error::Error for Error {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, Error> {
        Err(Error {
            msg: msg.into(),
            pos: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => self.err(format!("unexpected character '{}'", c as char)),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected '{word}'"))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return self.err("invalid \\u escape");
                            };
                            self.pos += 4;
                            // Surrogate pairs are not produced by our printer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return self.err("invalid escape"),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we just consumed.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let Some(chunk) = self.bytes.get(start..end) else {
                        return self.err("truncated UTF-8");
                    };
                    let Ok(s) = std::str::from_utf8(chunk) else {
                        return self.err("invalid UTF-8");
                    };
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        }
        match text.parse::<f64>() {
            Ok(f) => Ok(Value::Number(Number::Float(f))),
            Err(_) => self.err(format!("invalid number '{text}'")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Parse a JSON document into a [`Value`].
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.err("trailing characters");
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let scale = 3usize;
        let v = json!({
            "name": "e1",
            "ratio": 100.0 * 2.0 / 4.0,
            "scale": scale,
            "nested": { "ok": true, "none": null },
            "list": [1, 2.5, "three", [4], {"five": 5}],
        });
        assert_eq!(v.get("name").and_then(Value::as_str), Some("e1"));
        assert_eq!(v.get("ratio").and_then(Value::as_f64), Some(50.0));
        assert_eq!(v.get("scale").and_then(Value::as_u64), Some(3));
        assert_eq!(
            v.get("nested")
                .and_then(|n| n.get("ok"))
                .and_then(Value::as_bool),
            Some(true)
        );
        assert_eq!(
            v.get("list").and_then(Value::as_array).map(Vec::len),
            Some(5)
        );
    }

    #[test]
    fn print_parse_round_trip() {
        let v = json!({
            "counters": {"rows": 12345678901u64, "neg": -42, "f": 0.25},
            "stages": [{"name": "exchange", "ms": 1.5}, {"name": "eval", "ms": 0.5}],
            "text": "quote \" backslash \\ newline \n tab \t unicode é",
        });
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&compact).unwrap(), v);
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("{\"a\": }").is_err());
        assert!(from_str("[1, 2,,]").is_err());
        assert!(from_str("{\"a\": 1} trailing").is_err());
    }

    #[test]
    fn map_insert_replaces_in_place() {
        let mut m = Map::new();
        m.insert("a", json!(1));
        m.insert("b", json!(2));
        assert_eq!(m.insert("a", json!(3)), Some(json!(1)));
        assert_eq!(m.keys().collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(m.get("a"), Some(&json!(3)));
    }
}
