//! Property-based tests on the data-model and language substrates:
//! PNF idempotence and annotation preservation, schema/XML round-trips,
//! and parser round-trips through the pretty-printer.

use dtr::model::instance::{Instance, Value};
use dtr::model::pnf::{is_pnf, to_pnf};
use dtr::model::schema::Schema;
use dtr::model::types::Type;
use dtr::model::value::MappingName;
use dtr::query::parser::parse_query;
use dtr::xml::parser::instance_from_xml;
use dtr::xml::schema_xml::{schema_from_xml, schema_to_xml};
use dtr::xml::writer::{instance_to_xml, WriteOptions};
use proptest::prelude::*;

/// A random value tree of bounded depth: records of atomic fields and one
/// optional nested set.
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf_rec = (0u8..4, 0u8..4).prop_map(|(a, b)| {
        Value::record(vec![
            ("f0", Value::str(format!("x{a}"))),
            ("f1", Value::str(format!("y{b}"))),
        ])
    });
    prop::collection::vec(
        (leaf_rec.clone(), prop::collection::vec(leaf_rec, 0..4)).prop_map(|(base, inner)| {
            let Value::Record(mut fields) = base else {
                unreachable!()
            };
            fields.push(("kids".into(), Value::set(inner)));
            Value::Record(fields)
        }),
        0..8,
    )
    .prop_map(Value::set)
}

/// The schema the random values conform to.
fn value_schema() -> Schema {
    let leaf = Type::record(vec![("f0", Type::string()), ("f1", Type::string())]);
    let member = Type::record(vec![
        ("f0", Type::string()),
        ("f1", Type::string()),
        ("kids", Type::set(leaf)),
    ]);
    Schema::build("P", vec![("root", Type::set(member))]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pnf_is_idempotent_and_normalizing(v in value_strategy(), seed in 0u64..1000) {
        let mut inst = Instance::new("P");
        let root = inst.install_root("root", v);
        // Scatter some mapping annotations.
        let walk = inst.walk();
        for (i, n) in walk.iter().enumerate() {
            if (i as u64 + seed).is_multiple_of(3) {
                inst.add_mapping(*n, MappingName::new(format!("m{}", (i as u64 + seed) % 2)));
            }
        }
        let once = to_pnf(&inst);
        prop_assert!(is_pnf(&once));
        let twice = to_pnf(&once);
        prop_assert!(is_pnf(&twice));
        prop_assert_eq!(once.len(), twice.len());
        // Idempotence up to structure: the value trees coincide.
        let r1 = once.root("root").unwrap();
        let r2 = twice.root("root").unwrap();
        prop_assert!(once.to_value(r1) == twice.to_value(r2));
        // PNF never invents values: every atomic survives as a subset.
        prop_assert!(once.len() <= inst.len());
        // Union of annotations is preserved: every mapping name that was
        // present is still present somewhere.
        let names = |i: &Instance| {
            let mut out: Vec<String> = i
                .walk()
                .into_iter()
                .flat_map(|n| i.annotation(n).mappings.iter().map(|m| m.to_string()).collect::<Vec<_>>())
                .collect();
            out.sort();
            out.dedup();
            out
        };
        prop_assert_eq!(names(&inst), names(&once));
        let _ = root;
    }

    #[test]
    fn xml_round_trip_random_instances(v in value_strategy()) {
        let schema = value_schema();
        let mut inst = Instance::new("P");
        let root = inst.install_root("root", v);
        inst.annotate_elements(&schema).unwrap();
        let xml = instance_to_xml(&inst, WriteOptions::annotated());
        let back = instance_from_xml(&xml, &schema).unwrap();
        prop_assert_eq!(back.len(), inst.len());
        let back_root = back.root("root").unwrap();
        prop_assert!(back.to_value(back_root) == inst.to_value(root));
    }

    #[test]
    fn schema_xml_round_trip(n_fields in 1usize..8, with_choice in any::<bool>()) {
        let mut fields: Vec<(String, Type)> = (0..n_fields)
            .map(|i| (format!("f{i}"), Type::string()))
            .collect();
        if with_choice {
            fields.push((
                "alt".to_string(),
                Type::choice(vec![("l", Type::string()), ("r", Type::integer())]),
            ));
        }
        let schema = Schema::build(
            "DB",
            vec![("R", Type::set(Type::Record(
                fields.into_iter().map(|(l, t)| (l.as_str().into(), t)).collect(),
            )))],
        )
        .unwrap();
        let back = schema_from_xml(&schema_to_xml(&schema)).unwrap();
        prop_assert_eq!(back.len(), schema.len());
        for (id, el) in schema.elements() {
            let b = back.element(id);
            prop_assert_eq!(&b.label, &el.label);
            prop_assert_eq!(b.kind, el.kind);
            prop_assert_eq!(b.parent, el.parent);
        }
    }

    #[test]
    fn parser_display_round_trip(
        n_select in 1usize..4,
        n_from in 1usize..3,
        with_pred in any::<bool>(),
        double in any::<bool>(),
    ) {
        // Build a query text from generated pieces, parse, print, reparse.
        let from: Vec<String> = (0..n_from)
            .map(|i| if i == 0 {
                format!("Root{i}.items x{i}")
            } else {
                format!("x{}.kids x{i}", i - 1)
            })
            .collect();
        let select: Vec<String> = (0..n_select)
            .map(|i| format!("x{}.f{i}", i % n_from))
            .collect();
        let mut text = format!("select {} from {}", select.join(", "), from.join(", "));
        if with_pred {
            let arrow = if double { "=>" } else { "->" };
            text.push_str(&format!(
                " where x0.f0 = 'c' and <db:e {arrow} m {arrow} 'D':'/Q/q0'>"
            ));
        }
        let q1 = parse_query(&text).unwrap();
        let q2 = parse_query(&q1.to_string()).unwrap();
        prop_assert_eq!(q1, q2);
    }
}
