//! End-to-end tests of the Section 8 portal scenario: exchange, XML
//! round-trips of the tagged instance, mapping satisfaction, and the size
//! relations the experiments report.

use dtr::core::tagged::TaggedInstance;
use dtr::mapping::satisfy::is_satisfied;
use dtr::model::pnf::is_pnf;
use dtr::portal::scenario::{build, tagged, ScenarioConfig};
use dtr::query::eval::Source;
use dtr::query::functions::FunctionRegistry;
use dtr::xml::parser::instance_from_xml;
use dtr::xml::writer::{instance_to_xml, SizeReport, WriteOptions};

fn small() -> ScenarioConfig {
    ScenarioConfig {
        listings_per_source: 15,
        ..Default::default()
    }
}

#[test]
fn all_sixteen_mappings_satisfied() {
    let scenario = build(small());
    let t = scenario.exchange().unwrap();
    let funcs = FunctionRegistry::with_builtins();
    let sources: Vec<Source<'_>> = t
        .setting()
        .source_schemas()
        .iter()
        .zip(t.source_instances())
        .map(|(schema, instance)| Source { schema, instance })
        .collect();
    let target = Source {
        schema: t.setting().target_schema(),
        instance: t.target(),
    };
    assert_eq!(t.setting().mappings().len(), 16);
    for m in t.setting().mappings() {
        assert!(
            is_satisfied(m, &sources, target, &funcs).unwrap(),
            "{} not satisfied after exchange",
            m.name
        );
    }
}

#[test]
fn portal_instance_is_pnf() {
    let t = tagged(small());
    assert!(is_pnf(t.target()), "exchange output must be in PNF");
}

#[test]
fn tagged_round_trip_through_xml() {
    let t = tagged(small());
    let xml = instance_to_xml(t.target(), WriteOptions::annotated());
    let back = instance_from_xml(&xml, t.setting().target_schema()).unwrap();
    assert_eq!(back.len(), t.target().len());
    // Re-wrap as a tagged instance and ask the same MXQL query.
    let scenario2 = build(small());
    let t2 = TaggedInstance::from_parts(scenario2.setting, scenario2.sources, back).unwrap();
    let q = "select h.hid, m from Portal.houses h, h.price@map m where h.hid = 'H1000'";
    assert_eq!(
        t.query(q).unwrap().distinct_tuples(),
        t2.query(q).unwrap().distinct_tuples()
    );
}

#[test]
fn size_relations_hold() {
    let scenario = build(ScenarioConfig {
        listings_per_source: 40,
        ..Default::default()
    });
    let src_bytes = scenario.source_xml_bytes();
    let t = scenario.exchange().unwrap();
    let r = SizeReport::measure(t.target());
    // The three schemes are strictly ordered.
    assert!(r.plain < r.annotated_pnf);
    assert!(r.annotated_pnf < r.annotated_naive);
    assert!(r.annotated_naive < r.full);
    // PNF suppression removes most of the annotation bytes.
    assert!(r.pnf_annotation_bytes() * 3 < r.naive_annotation_bytes());
    // Source and integrated sizes are the same order of magnitude.
    assert!(r.plain > src_bytes / 3 && r.plain < src_bytes * 3);
}

#[test]
fn overlap_reduces_annotation_bytes() {
    // E5's mechanism: merged twins share one annotation.
    let no_overlap = build(ScenarioConfig {
        listings_per_source: 40,
        overlap: 0.0,
        ..Default::default()
    })
    .exchange()
    .unwrap();
    let with_overlap = build(ScenarioConfig {
        listings_per_source: 40,
        overlap: 0.3,
        ..Default::default()
    })
    .exchange()
    .unwrap();
    // The sources publish the same number of listings, but 30 % of three
    // of them are copies: fewer distinct portal houses.
    let count = |t: &TaggedInstance| {
        let schema = t.setting().target_schema();
        let member = schema
            .set_member(schema.resolve_path("/Portal/houses").unwrap())
            .unwrap();
        t.target().interpretation(member).len()
    };
    assert_eq!(count(&no_overlap), 200);
    assert_eq!(count(&with_overlap), 200 - 36);
    // E5's claim: for the same amount of published source data, the
    // annotation bytes fall when sources overlap (merged values share one
    // annotation: `map="m1 m2"` instead of two separate attributes). The
    // effect shows on the full (naive) annotation bytes; the PNF-suppressed
    // bytes are already so small that union-lengthening keeps them near
    // flat (see EXPERIMENTS.md) — "near" because a merged member's nested
    // set members keep only their actual generators, so they differ from
    // their parent's union and need their own attribute.
    let r0 = SizeReport::measure(no_overlap.target());
    let r1 = SizeReport::measure(with_overlap.target());
    assert!(
        r1.naive_annotation_bytes() < r0.naive_annotation_bytes(),
        "overlap must reduce annotation bytes ({} vs {})",
        r1.naive_annotation_bytes(),
        r0.naive_annotation_bytes()
    );
    let drift = (r1.pnf_annotation_bytes() as f64 - r0.pnf_annotation_bytes() as f64)
        / (r0.pnf_annotation_bytes() as f64);
    assert!(
        drift.abs() < 0.20,
        "PNF bytes stay roughly flat, drift {drift}"
    );
}

#[test]
fn agents_and_agencies_populated() {
    let t = tagged(small());
    let agents = t
        .query("select a.aid, a.name from Portal.agents a")
        .unwrap();
    assert!(!agents.is_empty());
    let agencies = t.query("select g.name from Portal.agencies g").unwrap();
    assert!(!agencies.is_empty());
    let offices = t.query("select o.name from Portal.offices o").unwrap();
    assert!(!offices.is_empty());
    // Windermere agents arrive with their split names re-joined.
    let wm_agents = t
        .query("select a.name, m from Portal.agents a, a.name@map m where m = 'wm3'")
        .unwrap();
    assert!(!wm_agents.is_empty());
    for row in wm_agents.tuples() {
        let name = row[0].to_string();
        assert_eq!(
            name.matches(' ').count(),
            1,
            "concat(first, ' ', last) should produce `First Last`, got {name}"
        );
    }
}

#[test]
fn choice_listers_reach_the_portal() {
    // Westfall's person/company choice: both alternatives must contribute.
    let t = tagged(ScenarioConfig {
        listings_per_source: 30,
        ..Default::default()
    });
    let wf1 = t
        .query("select h.hid, m from Portal.houses h, h.hid@map m where m = 'wf1'")
        .unwrap();
    let wf2 = t
        .query("select h.hid, m from Portal.houses h, h.hid@map m where m = 'wf2'")
        .unwrap();
    assert!(!wf1.is_empty(), "person listers must appear");
    assert!(!wf2.is_empty(), "company listers must appear");
    // A house is listed by a person XOR a company.
    let h1: Vec<String> = wf1.tuples().iter().map(|r| r[0].to_string()).collect();
    for row in wf2.tuples() {
        assert!(!h1.contains(&row[0].to_string()));
    }
}

#[test]
fn deterministic_scenarios() {
    let a = tagged(small());
    let b = tagged(small());
    assert_eq!(a.target().len(), b.target().len());
    let q = "select h.hid, h.price from Portal.houses h";
    assert_eq!(a.query(q).unwrap().tuples(), b.query(q).unwrap().tuples());
}
