//! Property-based tests over randomly generated mapping scenarios.
//!
//! For arbitrary relational sources, mappings and instances the following
//! must hold:
//!
//! * the exchange produces a target satisfying every mapping (Section 4.3);
//! * Theorems 6.1 and 6.4: the mapping predicates coincide with schema-level
//!   where/what-provenance;
//! * the provenance queries are ordered `q_where ⊑ q_what ⊑ q_why`
//!   (Section 6);
//! * the direct MXQL evaluation and the Section 7.3 translation agree.

use dtr::core::inclusion::element_included;
use dtr::core::provenance::{check_theorem_6_1, check_theorem_6_4, provenance_of, ProvenanceKind};
use dtr::core::runner::{canonical_rows, MetaRunner};
use dtr::core::tagged::{MappingSetting, TaggedInstance};
use dtr::core::virtualize::answer_virtually;
use dtr::mapping::glav::Mapping;
use dtr::mapping::satisfy::is_satisfied;
use dtr::model::instance::{Instance, Value};
use dtr::model::schema::Schema;
use dtr::model::types::{AtomicType, Type};
use dtr::model::value::MappingName;
use dtr::query::eval::Source;
use dtr::query::functions::FunctionRegistry;
use dtr_check::generators::{gen_nested_source, GenConfig};
use proptest::prelude::*;
use proptest::test_runner::TestRng;

/// A randomly drawn scenario description.
#[derive(Debug, Clone)]
struct Scen {
    /// Rows of R(a0..a3): each row is 4 small values.
    r_rows: Vec<[u8; 4]>,
    /// Rows of T(b0..b2).
    t_rows: Vec<[u8; 3]>,
    /// m1 copies R fields `copy1[i]` into Q position i (3 positions).
    copy1: [usize; 3],
    /// m2 joins R and T on `R.a<join_r> = T.b<join_t>` and copies
    /// (R.a<c0>, T.b<c1>) into Q positions 0 and 1.
    join_r: usize,
    join_t: usize,
    c0: usize,
    c1: usize,
    /// Seed for a third, *nested* source `N` (sets below set members,
    /// choices, records) drawn with the `dtr-check` generators; `m3` maps
    /// it into `Q` so Theorems 6.1/6.4 run beyond flat relations.
    nested_seed: u64,
}

fn scen_strategy() -> impl Strategy<Value = Scen> {
    let val = 0u8..3;
    let r_row = [val.clone(), val.clone(), val.clone(), val.clone()];
    let t_row = [val.clone(), val.clone(), val];
    (
        prop::collection::vec(r_row, 0..6),
        prop::collection::vec(t_row, 0..5),
        [0usize..4, 0usize..4, 0usize..4],
        0usize..4,
        0usize..3,
        0usize..4,
        0usize..3,
        0u64..1_000_000_000,
    )
        .prop_map(
            |(r_rows, t_rows, copy1, join_r, join_t, c0, c1, nested_seed)| Scen {
                r_rows,
                t_rows,
                copy1,
                join_r,
                join_t,
                c0,
                c1,
                nested_seed,
            },
        )
}

fn build_scenario(s: &Scen) -> TaggedInstance {
    let src_schema = Schema::build(
        "S",
        vec![
            (
                "R",
                Type::relation(vec![
                    ("a0", AtomicType::String),
                    ("a1", AtomicType::String),
                    ("a2", AtomicType::String),
                    ("a3", AtomicType::String),
                ]),
            ),
            (
                "T",
                Type::relation(vec![
                    ("b0", AtomicType::String),
                    ("b1", AtomicType::String),
                    ("b2", AtomicType::String),
                ]),
            ),
        ],
    )
    .unwrap();
    let tgt_schema = Schema::build(
        "D",
        vec![(
            "Q",
            Type::relation(vec![
                ("q0", AtomicType::String),
                ("q1", AtomicType::String),
                ("q2", AtomicType::String),
            ]),
        )],
    )
    .unwrap();

    let m1 = Mapping::parse(
        "m1",
        &format!(
            "foreach select r.a{}, r.a{}, r.a{} from R r
             exists select q.q0, q.q1, q.q2 from Q q",
            s.copy1[0], s.copy1[1], s.copy1[2]
        ),
    )
    .unwrap();
    let m2 = Mapping::parse(
        "m2",
        &format!(
            "foreach select r.a{}, t.b{} from R r, T t where r.a{} = t.b{}
             exists select q.q0, q.q1 from Q q",
            s.c0, s.c1, s.join_r, s.join_t
        ),
    )
    .unwrap();

    let mut inst = Instance::new("S");
    inst.install_root(
        "R",
        Value::set(
            s.r_rows
                .iter()
                .map(|row| {
                    Value::record(vec![
                        ("a0", Value::str(format!("v{}", row[0]))),
                        ("a1", Value::str(format!("v{}", row[1]))),
                        ("a2", Value::str(format!("v{}", row[2]))),
                        ("a3", Value::str(format!("v{}", row[3]))),
                    ])
                })
                .collect(),
        ),
    );
    inst.install_root(
        "T",
        Value::set(
            s.t_rows
                .iter()
                .map(|row| {
                    Value::record(vec![
                        ("b0", Value::str(format!("v{}", row[0]))),
                        ("b1", Value::str(format!("v{}", row[1]))),
                        ("b2", Value::str(format!("v{}", row[2]))),
                    ])
                })
                .collect(),
        ),
    );

    // A nested third source: arbitrary Rcd/Set/Choice shapes from the
    // dtr-check generators, mapped into Q by m3.
    let mut rng = TestRng::from_seed(s.nested_seed);
    let (n_schema, n_inst, m3) =
        gen_nested_source(&mut rng, "N", &tgt_schema, "m3", &GenConfig::default());

    let setting = MappingSetting::new(vec![src_schema, n_schema], tgt_schema, vec![m1, m2, m3])
        .expect("random setting validates");
    TaggedInstance::exchange(setting, vec![inst, n_inst]).expect("random exchange succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exchange_satisfies_all_mappings(s in scen_strategy()) {
        let tagged = build_scenario(&s);
        let funcs = FunctionRegistry::with_builtins();
        let sources: Vec<Source<'_>> = tagged
            .setting()
            .source_schemas()
            .iter()
            .zip(tagged.source_instances())
            .map(|(schema, instance)| Source { schema, instance })
            .collect();
        let target = Source {
            schema: tagged.setting().target_schema(),
            instance: tagged.target(),
        };
        for m in tagged.setting().mappings() {
            prop_assert!(
                is_satisfied(m, &sources, target, &funcs).unwrap(),
                "{} unsatisfied", m.name
            );
        }
    }

    #[test]
    fn theorems_6_1_and_6_4_hold(s in scen_strategy()) {
        let tagged = build_scenario(&s);
        for m in ["m1", "m2", "m3"] {
            prop_assert_eq!(
                check_theorem_6_1(&tagged, &MappingName::new(m)).unwrap(),
                None,
                "theorem 6.1 violated for {}", m
            );
            prop_assert_eq!(
                check_theorem_6_4(&tagged, &MappingName::new(m)).unwrap(),
                None,
                "theorem 6.4 violated for {}", m
            );
        }
    }

    #[test]
    fn provenance_inclusion_chain(s in scen_strategy()) {
        let tagged = build_scenario(&s);
        // For every generated q0 value of every mapping.
        let schema = tagged.setting().target_schema();
        let q0 = schema.resolve_path("/Q/q0").unwrap();
        for m in ["m1", "m2", "m3"] {
            let name = MappingName::new(m);
            for node in tagged.target().interpretation_by(q0, &name) {
                let w = provenance_of(&tagged, ProvenanceKind::Where, &name, node).unwrap();
                let wh = provenance_of(&tagged, ProvenanceKind::What, &name, node).unwrap();
                let wy = provenance_of(&tagged, ProvenanceKind::Why, &name, node).unwrap();
                prop_assert!(element_included(&w.query, &wh.query));
                prop_assert!(element_included(&wh.query, &wy.query));
                // The fact sets grow along the chain.
                let fw = w.fact_elements(&tagged);
                let fwh = wh.fact_elements(&tagged);
                let fwy = wy.fact_elements(&tagged);
                prop_assert!(fw.is_subset(&fwh));
                prop_assert!(fwh.is_subset(&fwy));
                // A value that exists has nonempty where-provenance.
                prop_assert!(!w.facts.is_empty());
            }
        }
    }

    #[test]
    fn direct_and_translated_engines_agree(s in scen_strategy()) {
        let tagged = build_scenario(&s);
        let runner = MetaRunner::new(tagged.setting()).unwrap();
        for text in [
            "select x.q0, m from Q x, x.q0@map m",
            "select e, m from where <db:e -> m -> 'D':e2>",
            "select e from where <db:e => m => 'D':'/Q/q0'>",
            "select x.q0, x.q1 from Q x where x.q0 = 'v1'",
            "select x.q1, m from Q x, x.q1@map m where e = x.q1@elem \
               and <'S':es -> m -> 'D':e>",
        ] {
            let direct = tagged.query(text).unwrap();
            let translated = runner.query(&tagged, text).unwrap();
            prop_assert_eq!(
                canonical_rows(&direct),
                canonical_rows(&translated),
                "disagreement on {}", text
            );
        }
    }

    #[test]
    fn virtual_answers_match_materialized_on_single_relation(s in scen_strategy()) {
        // The target has one relation, so every query stays inside single
        // mapping outputs: virtual answering must coincide exactly with
        // querying the materialized instance.
        let tagged = build_scenario(&s);
        let funcs = FunctionRegistry::with_builtins();
        for text in [
            "select x.q0, x.q1, x.q2 from Q x",
            "select x.q0 from Q x where x.q1 = 'v1'",
            "select x.q2, x.q0 from Q x where x.q0 = x.q1",
        ] {
            let q = dtr::query::parser::parse_query(text).unwrap();
            let virt = answer_virtually(
                tagged.setting(),
                tagged.source_instances(),
                &q,
                &funcs,
            )
            .unwrap();
            let mat = tagged.run(&q).unwrap();
            prop_assert_eq!(
                canonical_rows(&virt),
                canonical_rows(&mat),
                "virtual/materialized disagreement on {}", text
            );
        }
    }

    #[test]
    fn xml_round_trip_preserves_tagged_instance(s in scen_strategy()) {
        let tagged = build_scenario(&s);
        let xml = dtr::xml::writer::instance_to_xml(
            tagged.target(),
            dtr::xml::writer::WriteOptions::annotated(),
        );
        let back = dtr::xml::parser::instance_from_xml(
            &xml,
            tagged.setting().target_schema(),
        )
        .unwrap();
        prop_assert_eq!(back.len(), tagged.target().len());
        for (a, b) in tagged.target().walk().into_iter().zip(back.walk()) {
            prop_assert_eq!(
                tagged.target().annotation(a),
                back.annotation(b)
            );
        }
    }
}
