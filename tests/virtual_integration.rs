//! Virtual integration over the Section 8 portal: target queries answered
//! by unfolding through the sixteen mappings, checked against the
//! materialized tagged instance.

use dtr::core::runner::canonical_rows;
use dtr::core::virtualize::{answer_virtually, virtualize};
use dtr::portal::scenario::{build, ScenarioConfig};
use dtr::query::functions::FunctionRegistry;
use dtr::query::parser::parse_query;

fn small() -> ScenarioConfig {
    ScenarioConfig {
        listings_per_source: 10,
        ..Default::default()
    }
}

/// Runs a query both ways and returns (virtual rows, materialized rows).
fn both(text: &str) -> (Vec<String>, Vec<String>) {
    let scenario = build(small());
    let mut sources = scenario.sources.clone();
    for (inst, schema) in sources.iter_mut().zip(scenario.setting.source_schemas()) {
        inst.annotate_elements(schema).unwrap();
    }
    let q = parse_query(text).unwrap();
    let funcs = FunctionRegistry::with_builtins();
    let virt = answer_virtually(&scenario.setting, &sources, &q, &funcs).unwrap();
    let tagged = scenario.exchange().unwrap();
    let mat = tagged.query(text).unwrap();
    (canonical_rows(&virt), canonical_rows(&mat))
}

#[test]
fn houses_projection_matches_materialized() {
    let (v, m) = both("select h.hid, h.price from Portal.houses h");
    assert_eq!(v, m);
    assert_eq!(v.len(), 50);
}

#[test]
fn selection_matches_materialized() {
    let (v, m) = both("select h.hid, h.city from Portal.houses h where h.price > 1000000");
    assert_eq!(v, m);
    assert!(!v.is_empty());
}

#[test]
fn nested_binding_unfolds() {
    // features are populated by y1 (Yahoo) and wf1/wf2 (Westfall).
    let (v, m) = both("select h.hid, f.name from Portal.houses h, h.features f");
    assert_eq!(v, m, "feature unfolding must match the materialized join");
    assert!(!v.is_empty());
}

#[test]
fn nested_contact_fields_resolve() {
    let (v, m) = both("select h.hid, h.contact.name from Portal.houses h where h.hid = 'H1000'");
    assert_eq!(v, m);
    assert_eq!(v.len(), 1);
}

#[test]
fn agents_across_three_sources() {
    let (v, m) = both("select a.name, a.phone from Portal.agents a");
    // Virtual = union over nk3/wm3/hs3 unfoldings; materialized identical.
    assert_eq!(v, m);
    assert!(!v.is_empty());
}

#[test]
fn virtual_is_sound_on_cross_relation_join() {
    // houses x agents joined on contact name: merged values can create
    // cross-mapping joins in the materialized instance, so virtual ⊆
    // materialized.
    let (v, m) = both(
        "select h.hid, a.phone
         from Portal.houses h, Portal.agents a
         where h.contact.name = a.name",
    );
    for row in &v {
        assert!(m.contains(row), "unsound virtual answer: {row}");
    }
}

#[test]
fn rewriting_counts() {
    let scenario = build(small());
    // houses are populated by 11 house-producing mappings
    // (y1 y2 nk1 nk2 wm1 wm2 wf1 wf2 hs1 hs2 hs4).
    let q = parse_query("select h.hid from Portal.houses h").unwrap();
    let rw = virtualize(&q, &scenario.setting).unwrap();
    assert_eq!(rw.len(), 11);
    // openHouses come from y2, nk2, wm2, hs4 only.
    let q = parse_query("select h.hid, o.date from Portal.houses h, h.openHouses o").unwrap();
    let rw = virtualize(&q, &scenario.setting).unwrap();
    assert_eq!(rw.len(), 4);
    // Asking for a field nobody populates yields no rewritings at all.
    let q = parse_query("select h.county from Portal.houses h").unwrap();
    let rw = virtualize(&q, &scenario.setting).unwrap();
    assert!(rw.is_empty());
}

#[test]
fn unfolded_queries_are_source_queries() {
    let scenario = build(small());
    let q = parse_query("select h.hid from Portal.houses h").unwrap();
    for r in virtualize(&q, &scenario.setting).unwrap() {
        let text = r.to_string();
        assert!(
            !text.contains("Portal."),
            "rewriting must not mention the target: {text}"
        );
    }
}
