//! Error-path coverage for schema validation (`Schema::build`) and query
//! well-formedness checking (`dtr_query::check`): the rejection paths the
//! happy-path suites never reach.

use dtr::model::schema::{Schema, SchemaError};
use dtr::model::types::{AtomicType, Type, TypeError};
use dtr::query::check::{check_query, CheckError, SchemaCatalog};
use dtr::query::parser::parse_query;

fn nested_schema() -> Schema {
    // S { R: Set of { name: Str, addr: Choice(home: Str, office: { city: Str }),
    //                 kids: Set of { age: Int } } }
    Schema::build(
        "S",
        vec![(
            "R",
            Type::set(Type::record(vec![
                ("name", Type::string()),
                (
                    "addr",
                    Type::choice(vec![
                        ("home", Type::string()),
                        ("office", Type::record(vec![("city", Type::string())])),
                    ]),
                ),
                (
                    "kids",
                    Type::set(Type::record(vec![("age", Type::integer())])),
                ),
            ])),
        )],
    )
    .expect("the fixture schema is valid")
}

fn check(text: &str) -> Result<(), CheckError> {
    let schema = nested_schema();
    let q = parse_query(text).expect("fixture query parses");
    check_query(&q, SchemaCatalog::new(vec![&schema])).map(|_| ())
}

// ---------------------------------------------------------------------------
// Schema::build validation
// ---------------------------------------------------------------------------

#[test]
fn duplicate_roots_rejected() {
    let err = Schema::build(
        "S",
        vec![
            ("R", Type::relation(vec![("a", AtomicType::String)])),
            ("R", Type::relation(vec![("b", AtomicType::String)])),
        ],
    )
    .unwrap_err();
    assert!(matches!(err, SchemaError::DuplicateRoot(l) if l.as_str() == "R"));
}

#[test]
fn duplicate_record_attribute_rejected() {
    let err = Schema::build(
        "S",
        vec![(
            "R",
            Type::set(Type::record(vec![
                ("a", Type::string()),
                ("a", Type::integer()),
            ])),
        )],
    )
    .unwrap_err();
    assert!(matches!(
        err,
        SchemaError::Type(TypeError::DuplicateAttribute(l)) if l.as_str() == "a"
    ));
}

#[test]
fn duplicate_choice_alternative_rejected() {
    let err = Schema::build(
        "S",
        vec![(
            "C",
            Type::choice(vec![("x", Type::string()), ("x", Type::string())]),
        )],
    )
    .unwrap_err();
    assert!(matches!(
        err,
        SchemaError::Type(TypeError::DuplicateAttribute(_))
    ));
}

#[test]
fn star_attribute_rejected() {
    let err =
        Schema::build("S", vec![("R", Type::record(vec![("*", Type::string())]))]).unwrap_err();
    assert!(matches!(err, SchemaError::Type(TypeError::StarAttribute)));
}

#[test]
fn atomic_set_element_rejected() {
    let err = Schema::build("S", vec![("R", Type::set(Type::string()))]).unwrap_err();
    assert!(matches!(
        err,
        SchemaError::Type(TypeError::AtomicSetElement)
    ));
}

#[test]
fn nested_invalid_type_rejected() {
    // The validation must recurse: a bad record deep below a valid shell.
    let err = Schema::build(
        "S",
        vec![(
            "R",
            Type::set(Type::record(vec![(
                "inner",
                Type::record(vec![("d", Type::string()), ("d", Type::string())]),
            )])),
        )],
    )
    .unwrap_err();
    assert!(matches!(
        err,
        SchemaError::Type(TypeError::DuplicateAttribute(_))
    ));
}

#[test]
fn resolve_path_rejects_unknown_segments() {
    let schema = nested_schema();
    assert!(schema.resolve_path("/R/name").is_some());
    assert!(schema.resolve_path("/R/nope").is_none());
    assert!(schema.resolve_path("/Nope").is_none());
    assert!(schema.resolve_path("/R/name/deeper").is_none());
}

// ---------------------------------------------------------------------------
// dtr-query::check rejections
// ---------------------------------------------------------------------------

#[test]
fn project_on_non_record_rejected() {
    // `name` is atomic: projecting through it is not a record step.
    let err = check("select r.name.x from R r").unwrap_err();
    assert!(
        matches!(err, CheckError::ProjectOnNonRecord { .. }),
        "got {err:?}"
    );
}

#[test]
fn project_on_choice_rejected() {
    // `addr` is a choice: it requires `->`, not `.`.
    let err = check("select r.addr.home from R r").unwrap_err();
    assert!(
        matches!(err, CheckError::ProjectOnNonRecord { .. }),
        "got {err:?}"
    );
}

#[test]
fn choice_selection_on_non_choice_rejected() {
    // `->` on a record-typed attribute.
    let err = check("select k.age from R r, r.kids->age k").unwrap_err();
    assert!(
        matches!(err, CheckError::ChoiceOnNonChoice { .. }),
        "got {err:?}"
    );
}

#[test]
fn unknown_choice_alternative_rejected() {
    let err = check("select r.name from R r where r.addr->street = 'v'").unwrap_err();
    assert!(
        matches!(err, CheckError::UnknownAttribute { .. }),
        "got {err:?}"
    );
}

#[test]
fn unbound_variable_in_binding_rejected() {
    // `z` is never declared; a bare base name falls back to root lookup,
    // so the failure surfaces as an unknown root.
    let err = check("select k.age from z.kids k").unwrap_err();
    assert!(
        matches!(err, CheckError::UnknownRoot(r) if r == "z"),
        "got a different error"
    );
}

#[test]
fn unbound_variable_in_condition_rejected() {
    // The parser rewrites unknown bare names into roots, so the undefined
    // variable path is only reachable from a programmatically built query.
    use dtr::query::ast::{Expr, PathExpr};
    let schema = nested_schema();
    let mut q = parse_query("select r.name from R r").unwrap();
    q.select
        .push(Expr::path(PathExpr::var("z").project("name")));
    let err = check_query(&q, SchemaCatalog::new(vec![&schema]))
        .err()
        .expect("undefined variable must be rejected");
    assert!(
        matches!(err, CheckError::UndefinedVariable(v) if v == "z"),
        "got a different error"
    );
}

#[test]
fn step_on_meta_variable_rejected() {
    // `m` is a mapping annotation: it has no attributes to step into.
    let err = check("select m.x from R r, r.name@map m").unwrap_err();
    assert!(matches!(err, CheckError::StepOnMeta(_)), "got {err:?}");
}

#[test]
fn non_atomic_comparison_rejected() {
    // Comparing a whole set makes no sense in the conjunctive fragment.
    let err = check("select r.name from R r where r.kids = 'v'").unwrap_err();
    assert!(
        matches!(
            err,
            CheckError::NonAtomicComparison(_) | CheckError::TypeMismatch { .. }
        ),
        "got {err:?}"
    );
}

#[test]
fn cross_type_comparison_rejected() {
    // Str vs Int has no comparable interpretation in the checker.
    let err = check("select r.name from R r, r.kids k where r.name = k.age").unwrap_err();
    assert!(
        matches!(err, CheckError::TypeMismatch { .. }),
        "got {err:?}"
    );
}

#[test]
fn duplicate_variable_across_binding_kinds_rejected() {
    // Same name bound by a set binding and again by an @map binding.
    let err = check("select r.name from R r, r.name@map r").unwrap_err();
    assert!(
        matches!(
            err,
            CheckError::DuplicateVariable(_) | CheckError::ConflictingVariable(_)
        ),
        "got {err:?}"
    );
}

#[test]
fn binding_over_root_record_rejected() {
    // Binding over an atomic leaf is not iterable.
    let err = check("select x.y from R r, r.name x").unwrap_err();
    assert!(
        matches!(err, CheckError::InvalidBindingSource { .. }),
        "got {err:?}"
    );
}
