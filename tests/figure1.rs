//! Integration tests reproducing the paper's figures on the running
//! example: the Figure 1 scenario, the Figure 2 schema graphs, the Figure 3
//! annotated instance and the Figure 5 metastore encoding.

use dtr::core::runner::MetaRunner;
use dtr::core::testkit;
use dtr::mapping::satisfy::is_satisfied;
use dtr::model::value::MappingName;
use dtr::query::eval::Source;
use dtr::query::functions::FunctionRegistry;

#[test]
fn figure_1_setting_validates() {
    let setting = testkit::figure1_setting();
    assert_eq!(setting.mappings().len(), 3);
    assert_eq!(setting.source_schemas().len(), 2);
    // All three mappings share the exists shape (five positions into
    // estates and contacts).
    for m in setting.mappings() {
        assert_eq!(m.foreach.select.len(), 5);
        assert_eq!(m.exists.select.len(), 5);
    }
}

#[test]
fn figure_2_schema_graphs() {
    // EUdb: elements e0..e9; Pdb: eleven elements (e30..e40 in the paper).
    let eu = testkit::eu_schema();
    let pdb = testkit::portal_schema();
    assert_eq!(eu.len(), 10);
    assert_eq!(pdb.len(), 11);
    let dot = eu.to_graphviz();
    // The graph has one node per element and one edge per parent link.
    assert_eq!(dot.matches("label=").count(), 10);
    assert_eq!(dot.matches(" -> ").count(), 9);
    assert!(dot.contains("agentPhone"));
}

#[test]
fn figure_3_annotated_instance() {
    let tagged = testkit::figure1();
    let schema = tagged.setting().target_schema();

    // The estates set and its annotations.
    let estates = schema.resolve_path("/Portal/estates").unwrap();
    let set_node = tagged.target().interpretation(estates)[0];
    let members = tagged.target().set_members(set_node).unwrap();
    assert_eq!(members.len(), 3); // H522 (m2), H7 (m1), H2525 (m3)

    // The title "HomeGain" carries {m2, m3} — the union of Figure 3.
    let title_elem = schema.resolve_path("/Portal/contacts/title").unwrap();
    let homegain = tagged
        .target()
        .interpretation(title_elem)
        .into_iter()
        .find(|&n| tagged.target().atomic(n).unwrap().as_str() == Some("HomeGain"))
        .unwrap();
    let anns: Vec<&str> = tagged
        .target()
        .annotation(homegain)
        .mappings
        .iter()
        .map(|m| m.as_str())
        .collect();
    assert_eq!(anns, ["m2", "m3"]);

    // Every node has an element annotation (f_el is total).
    for n in tagged.target().walk() {
        assert!(
            tagged.target().annotation(n).element.is_some(),
            "node without element annotation"
        );
    }

    // The root Portal record carries every mapping that fired.
    let root = tagged.target().root("Portal").unwrap();
    let anns: Vec<&str> = tagged
        .target()
        .annotation(root)
        .mappings
        .iter()
        .map(|m| m.as_str())
        .collect();
    assert_eq!(anns, ["m1", "m2", "m3"]);
}

#[test]
fn all_mappings_satisfied_after_exchange() {
    let tagged = testkit::figure1();
    let funcs = FunctionRegistry::with_builtins();
    let sources: Vec<Source<'_>> = tagged
        .setting()
        .source_schemas()
        .iter()
        .zip(tagged.source_instances())
        .map(|(schema, instance)| Source { schema, instance })
        .collect();
    let target = Source {
        schema: tagged.setting().target_schema(),
        instance: tagged.target(),
    };
    for m in tagged.setting().mappings() {
        assert!(
            is_satisfied(m, &sources, target, &funcs).unwrap(),
            "{} not satisfied",
            m.name
        );
    }
}

#[test]
fn figure_5_metastore_rows() {
    let tagged = testkit::figure1();
    let runner = MetaRunner::new(tagged.setting()).unwrap();
    let store = runner.store();
    // Two source schemas + the portal: 3 Db rows; m1..m3 with two queries
    // each.
    assert_eq!(store.dbs.len(), 3);
    assert_eq!(store.mappings.len(), 3);
    assert_eq!(store.queries.len(), 6);
    // Five correspondences per mapping (Figure 5 shows m3's five rows).
    assert_eq!(store.correspondences.len(), 15);
    // m3's first correspondence: binding p, EU hid element.
    let m3_rows: Vec<_> = store
        .correspondences
        .iter()
        .filter(|c| c.mid == "m3")
        .collect();
    assert_eq!(m3_rows[0].for_bid, "p");
    let hid = store.element_by_path("EUdb", "/EU/postings/hid").unwrap();
    assert_eq!(m3_rows[0].for_eid, hid.eid);
    // Each exists query has its e.contact = c.title condition.
    assert_eq!(store.conditions.len(), 3 + 2); // 3 exists joins + m1/m2 foreach joins
}

#[test]
fn interpretation_by_mapping_partition() {
    // I[e]_m subsets partition by generating mapping for value elements
    // created by a single mapping each.
    let tagged = testkit::figure1();
    let schema = tagged.setting().target_schema();
    let value_elem = schema.resolve_path("/Portal/estates/value").unwrap();
    let all = tagged.target().interpretation(value_elem);
    let by_m: usize = ["m1", "m2", "m3"]
        .iter()
        .map(|m| {
            tagged
                .target()
                .interpretation_by(value_elem, &MappingName::new(*m))
                .len()
        })
        .sum();
    assert_eq!(all.len(), 3);
    assert_eq!(by_m, 3);
}
