//! Every worked MXQL example of the paper, executed through both engines:
//! the direct Section 5 semantics and the Section 7.3 translation over the
//! metastore. The two must agree.

use dtr::core::runner::{canonical_rows, MetaRunner};
use dtr::core::tagged::TaggedInstance;
use dtr::core::testkit;

fn both(tagged: &TaggedInstance, runner: &MetaRunner, text: &str) -> Vec<String> {
    let direct = tagged.query(text).expect("direct evaluation");
    let translated = runner.query(tagged, text).expect("translated evaluation");
    assert_eq!(
        canonical_rows(&direct),
        canonical_rows(&translated),
        "engines disagree on: {text}"
    );
    canonical_rows(&direct)
}

#[test]
fn example_5_4() {
    let tagged = testkit::figure1();
    let runner = MetaRunner::new(tagged.setting()).unwrap();
    let rows = both(
        &tagged,
        &runner,
        "select x.hid, x.value, m from Portal.estates x, x.value@map m",
    );
    assert_eq!(rows.len(), 3);
    assert!(rows.contains(&"H522 | 500K | m2".to_string()));
    assert!(rows.contains(&"H2525 | 300K | m3".to_string()));
    assert!(rows.contains(&"H7 | 250K | m1".to_string()));
}

#[test]
fn example_5_5() {
    let tagged = testkit::figure1();
    let runner = MetaRunner::new(tagged.setting()).unwrap();
    let rows = both(
        &tagged,
        &runner,
        "select s.hid, m
         from Portal.estates s, Portal.contacts c, c.title@map m
         where s.contact = c.title and e = c.title@elem
           and <'USdb':'US/agents/title/firm' -> m -> 'Pdb':e>",
    );
    // The paper reports ('H522','m2'); by the formal semantics the merged
    // HomeGain contact also joins H2525 (see DESIGN.md).
    assert!(rows.contains(&"H522 | m2".to_string()));
    assert!(!rows.iter().any(|r| r.contains("m1") || r.contains("m3")));
}

#[test]
fn example_5_6() {
    let tagged = testkit::figure1();
    let runner = MetaRunner::new(tagged.setting()).unwrap();
    let rows = both(
        &tagged,
        &runner,
        "select e from where <db:e -> m -> 'Pdb':'/Portal/estates/estate/stories'>",
    );
    // "The query returns Element type values floors and levels."
    assert!(rows.contains(&"USdb:/US/houses/floors".to_string()));
    assert!(rows.contains(&"EUdb:/EU/postings/levels".to_string()));
    assert_eq!(rows.len(), 2);
}

#[test]
fn example_5_7() {
    let tagged = testkit::figure1();
    let runner = MetaRunner::new(tagged.setting()).unwrap();
    let rows = both(
        &tagged,
        &runner,
        "select c.title, es
         from Portal.estates s, Portal.contacts c, c.title@map m
         where s.contact = c.title and e = c.title@elem
           and <'USdb':es => m => 'Pdb':e>",
    );
    // "element aid will be in the answer set" — via both relations' aid.
    assert!(rows.iter().any(|r| r.ends_with("/US/houses/aid")));
    assert!(rows.iter().any(|r| r.ends_with("/US/agents/aid")));
}

#[test]
fn section_8_houses_in_neighborhood_query_shape() {
    // The Section 8 query `select db, e from where <db:e => m => ...>`
    // (adapted to the running example's value element).
    let tagged = testkit::figure1();
    let runner = MetaRunner::new(tagged.setting()).unwrap();
    let rows = both(
        &tagged,
        &runner,
        "select db, e from where <db:e => m => 'Pdb':'/Portal/estates/value'>",
    );
    // Sources of value: price (m1, m2) and totalVal (m3), plus every other
    // select/where element of those mappings.
    assert!(rows.iter().any(|r| r.ends_with("/US/houses/price")));
    assert!(rows.iter().any(|r| r.ends_with("/EU/postings/totalVal")));
    // db column equals the element's database.
    for r in &rows {
        let (db, elem) = r.split_once(" | ").unwrap();
        assert!(elem.starts_with(&format!("{db}:")), "{r}");
    }
}

#[test]
fn queries_on_source_instances_too() {
    // The catalog spans target and sources; plain queries can hit either.
    let tagged = testkit::figure1();
    let r = tagged
        .query("select h.hid, h.price from US.houses h where h.price = '500K'")
        .unwrap();
    assert_eq!(r.len(), 1);
    assert_eq!(r.tuples()[0][0].to_string(), "H522");
}

#[test]
fn elem_operator_on_source_values() {
    // @elem works on source instances as well (their elements are
    // annotated at exchange time).
    let tagged = testkit::figure1();
    let r = tagged
        .query("select h.price@elem from US.houses h where h.hid = 'H522'")
        .unwrap();
    assert_eq!(r.tuples()[0][0].to_string(), "USdb:/US/houses/price");
}

#[test]
fn mixed_data_and_metadata_filters() {
    // Combine an ordinary data predicate with a provenance predicate.
    let tagged = testkit::figure1();
    let runner = MetaRunner::new(tagged.setting()).unwrap();
    let rows = both(
        &tagged,
        &runner,
        "select x.hid
         from Portal.estates x, x.value@map m
         where x.value = '300K' and e = x.value@elem
           and <'EUdb':'/EU/postings/totalVal' -> m -> 'Pdb':e>",
    );
    assert_eq!(rows, vec!["H2525".to_string()]);
}
