//! Property-based tests for the incremental exchange delta API, over the
//! same seeded scenarios the conformance harness draws:
//!
//! * applying an edit batch is equivalent to applying its edits as
//!   singleton batches in order (batch resolution is sequential);
//! * inserting a tuple and deleting it in the same batch is a no-op on the
//!   target;
//! * every [`TargetDelta`] round-trips through its JSON rendering.

use dtr::mapping::delta::{EditOp, SourceDelta, TargetDelta};
use dtr::mapping::exchange::ExchangeOptions;
use dtr::mapping::incremental::IncrementalExchange;
use dtr::model::instance::Instance;
use dtr::model::schema::Schema;
use dtr::query::functions::FunctionRegistry;
use dtr_check::generators::{gen_scenario, gen_update_stream, GenConfig, Scenario};
use dtr_check::laws::canon;
use proptest::prelude::*;
use proptest::test_runner::TestRng;

fn engine_for(scen: &Scenario) -> IncrementalExchange {
    let schemas: Vec<Schema> = scen.sources.iter().map(|(s, _)| s.clone()).collect();
    let mut instances: Vec<Instance> = scen.sources.iter().map(|(_, i)| i.clone()).collect();
    for (inst, schema) in instances.iter_mut().zip(&schemas) {
        inst.annotate_elements(schema).unwrap();
    }
    IncrementalExchange::new(
        schemas,
        instances,
        scen.target.clone(),
        scen.mappings.clone(),
        FunctionRegistry::with_builtins(),
        ExchangeOptions::default(),
    )
    .unwrap()
}

/// The live cardinality of a `Root.rel` set path in the engine's sources.
fn cardinality(engine: &IncrementalExchange, path: &str) -> usize {
    let (root, rel) = path.split_once('.').unwrap();
    engine
        .sources()
        .iter()
        .find_map(|inst| {
            let r = inst.root(root)?;
            let s = inst.child_by_label(r, rel)?;
            inst.set_members(s).map(<[_]>::len)
        })
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One batch of k edits ≡ k singleton batches applied in order: the
    /// targets (canonical rendering, annotations included) agree after
    /// every step.
    #[test]
    fn batch_equals_singletons_in_order(seed in 0u64..4096) {
        let cfg = GenConfig::default();
        let mut rng = TestRng::from_seed(seed);
        let scen = gen_scenario(&mut rng, &cfg);
        let stream = gen_update_stream(&mut rng, &scen, &cfg, 3);
        let mut batched = engine_for(&scen);
        let mut single = engine_for(&scen);
        for delta in &stream {
            batched.apply(delta).unwrap();
            for edit in &delta.edits {
                single
                    .apply(&SourceDelta { edits: vec![edit.clone()] })
                    .unwrap();
            }
            prop_assert_eq!(canon(batched.target()), canon(single.target()));
        }
    }

    /// Inserting a tuple and deleting it again in the same batch leaves
    /// the target untouched: batch resolution cancels the pair before any
    /// re-evaluation happens.
    #[test]
    fn insert_then_delete_same_tuple_is_a_noop(seed in 0u64..4096) {
        let cfg = GenConfig::default();
        let mut rng = TestRng::from_seed(seed);
        let scen = gen_scenario(&mut rng, &cfg);
        let stream = gen_update_stream(&mut rng, &scen, &cfg, 6);
        // Scavenge a conforming (path, member value) pair from the stream.
        let Some((path, value)) = stream.iter().flat_map(|d| &d.edits).find_map(|e| {
            match &e.op {
                EditOp::Insert(v) => Some((e.path.clone(), v.clone())),
                _ => None,
            }
        }) else {
            return Ok(()); // no insert drawn — nothing to test on this seed
        };
        let mut engine = engine_for(&scen);
        let before = canon(engine.target());
        let at = cardinality(&engine, &path);
        let td = engine
            .apply(&SourceDelta::new().insert(path.clone(), value).delete(path, at))
            .unwrap();
        prop_assert!(td.inserted.is_empty());
        prop_assert!(td.retracted.is_empty());
        prop_assert_eq!(td.rows_added, 0);
        prop_assert_eq!(td.rows_removed, 0);
        prop_assert_eq!(canon(engine.target()), before);
    }

    /// Every applied batch's TargetDelta round-trips through JSON.
    #[test]
    fn target_delta_roundtrips_through_json(seed in 0u64..4096) {
        let cfg = GenConfig::default();
        let mut rng = TestRng::from_seed(seed);
        let scen = gen_scenario(&mut rng, &cfg);
        let stream = gen_update_stream(&mut rng, &scen, &cfg, 3);
        let mut engine = engine_for(&scen);
        for delta in &stream {
            let td = engine.apply(delta).unwrap();
            let back = TargetDelta::from_json(&td.to_json());
            prop_assert_eq!(Some(td), back);
        }
    }
}
