//! The Section 8 experiment harness.
//!
//! Regenerates every number the paper's "Experience" section reports — see
//! the experiment index in DESIGN.md and the recorded results in
//! EXPERIMENTS.md. Run with:
//!
//! ```text
//! cargo run --release --bin experiments -- --all            # paper scale (10k listings)
//! cargo run --release --bin experiments -- --quick --all    # 1/10 scale
//! cargo run --release --bin experiments -- --e2 --e5        # selected experiments
//! cargo run --release --bin experiments -- --json out.json  # also dump JSON
//! cargo run --release --bin experiments -- --all --profile  # EXPLAIN-style profile
//! ```
//!
//! `--profile` (or `DTR_PROFILE=1`) enables the `dtr-obs` span collector and
//! counter registry; the harness then prints the aggregated profile tree
//! (plus p50/p90/p99 span latency) and, with `--json`, embeds it under the
//! `"profile"` key with the percentiles under `"latency_ns"`.
//!
//! `--stats` (or `DTR_STATS=1`) enables the statistics catalog: per-path
//! tuple counts, distinct-value estimates, set-cardinality histograms, and
//! observed join selectivities collected while the exchanges and timed
//! queries run. The harness prints a summary and, with `--json`, embeds the
//! full catalog under the `"stats"` key.
//!
//! `--deadline-ms MS` and `--max-rows N` run every exchange and timed query
//! under a `dtr-obs` resource budget. An exhausted budget aborts the run
//! cleanly: the harness prints the structured guard error and exits with
//! status 3 — never a panic, never a half-written result.

use dtr_core::runner::MetaRunner;
use dtr_core::store::{DurableOptions, DurableSession};
use dtr_core::tagged::{MxqlError, TaggedInstance};
use dtr_mapping::delta::SourceDelta;
use dtr_mapping::durable::MemVfs;
use dtr_mapping::exchange::ExchangeOptions;
use dtr_model::instance::Value;
use dtr_obs::guard::Budget;
use dtr_portal::nesting::nested_tagged;
use dtr_portal::scenario::{build, ScenarioConfig};
use dtr_query::parser::parse_query;
use dtr_xml::schema_xml::schema_to_xml;
use dtr_xml::writer::instance_to_xml as write_instance;
use dtr_xml::writer::{instance_to_xml, SizeReport, WriteOptions};
use serde_json::{json, Value as Json};
use std::sync::Arc;
use std::time::{Duration, Instant};

const MB: f64 = 1024.0 * 1024.0;

struct Args {
    run: Vec<&'static str>,
    listings_per_source: usize,
    json_path: Option<String>,
    profile: bool,
    stats: bool,
    trace_out: Option<String>,
    audit_out: Option<String>,
    parallel: bool,
    workers: usize,
    budget: Budget,
}

/// Unwraps a pipeline result, turning a guard abort into a clean exit
/// (status 3, structured error on stderr) and any other error into the
/// panic it always was.
fn guard_exit<T>(result: Result<T, MxqlError>, what: &str) -> T {
    match result {
        Ok(v) => v,
        Err(e) => match e.guard() {
            Some(g) => {
                eprintln!("experiments: resource budget exhausted during {what}:");
                eprintln!("  {g}");
                eprintln!("the run aborted cleanly; raise --deadline-ms / --max-rows to complete");
                std::process::exit(3);
            }
            None => panic!("{what} failed: {e}"),
        },
    }
}

/// Reports a file error as structured data — `io error: <op> <path>:
/// <cause>` — and exits cleanly (status 4). Output sinks must never turn
/// a full disk or a bad path into a panic and a backtrace.
fn io_exit(op: &str, path: &str, e: impl std::fmt::Display) -> ! {
    eprintln!("experiments: io error: {op} {path}: {e}");
    std::process::exit(4);
}

/// Reports a bad command-line argument and exits (status 2).
fn usage_exit(msg: &str) -> ! {
    eprintln!("experiments: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut run = Vec::new();
    let mut quick = false;
    let mut json_path = None;
    let mut listings = 2000usize;
    let mut profile = false;
    let mut stats = false;
    let mut trace_out = None;
    let mut audit_out = None;
    let mut parallel = false;
    let mut workers = 0usize;
    let mut budget = Budget::unlimited();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--all" => run.extend(["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10"]),
            "--e1" => run.push("e1"),
            "--e2" => run.push("e2"),
            "--e3" => run.push("e3"),
            "--e4" => run.push("e4"),
            "--e5" => run.push("e5"),
            "--e6" => run.push("e6"),
            "--e7" => run.push("e7"),
            "--e8" => run.push("e8"),
            "--e9" => run.push("e9"),
            "--e10" => run.push("e10"),
            "--quick" => quick = true,
            "--scale" => {
                listings = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage_exit("--scale takes a number"));
            }
            "--json" => json_path = it.next(),
            "--profile" => profile = true,
            "--stats" => stats = true,
            "--trace-out" => {
                trace_out = Some(
                    it.next()
                        .unwrap_or_else(|| usage_exit("--trace-out takes a path")),
                )
            }
            "--parallel" => parallel = true,
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage_exit("--workers takes a number"));
                parallel = true;
            }
            "--audit-out" => {
                audit_out = Some(
                    it.next()
                        .unwrap_or_else(|| usage_exit("--audit-out takes a path")),
                )
            }
            "--deadline-ms" => {
                let ms: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage_exit("--deadline-ms takes a number"));
                budget.deadline = Some(Duration::from_millis(ms));
            }
            "--max-rows" => {
                budget.max_rows = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage_exit("--max-rows takes a number")),
                );
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if run.is_empty() {
        run.extend(["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10"]);
    }
    Args {
        run,
        listings_per_source: if quick { listings / 10 } else { listings },
        json_path,
        profile,
        stats,
        trace_out,
        audit_out,
        parallel,
        workers,
        budget,
    }
}

fn banner(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

fn mb(bytes: usize) -> f64 {
    bytes as f64 / MB
}

/// Builds the default scenario once (shared by E1/E2/E4/E7/E9). The
/// exchange runs under `budget`; exhaustion exits cleanly via
/// [`guard_exit`].
fn default_tagged(
    n: usize,
    budget: &Budget,
    parallel: bool,
    workers: usize,
) -> (TaggedInstance, usize) {
    let scenario = build(ScenarioConfig {
        listings_per_source: n,
        ..Default::default()
    });
    let src_bytes = scenario.source_xml_bytes();
    let opts = ExchangeOptions {
        budget: budget.clone(),
        parallel,
        workers,
        ..ExchangeOptions::default()
    };
    let tagged = guard_exit(scenario.exchange_with(&opts), "the portal exchange");
    (tagged, src_bytes)
}

/// E1 — integrated instance slightly larger than the source data
/// (multi-mapped values: the paper's 14.3 MB → 14.5 MB).
fn e1(tagged: &TaggedInstance, src_bytes: usize) -> Json {
    banner("E1", "source size vs integrated instance size");
    let plain = instance_to_xml(tagged.target(), WriteOptions::plain()).len();
    println!(
        "  sources (plain XML):     {:>8.2} MB   (paper: 14.3 MB)",
        mb(src_bytes)
    );
    println!(
        "  integrated (plain XML):  {:>8.2} MB   (paper: 14.5 MB)",
        mb(plain)
    );
    println!(
        "  ratio integrated/source: {:>8.3}     (paper: 1.014; >1 means values were \
         represented more than once)",
        plain as f64 / src_bytes as f64
    );
    json!({"source_mb": mb(src_bytes), "integrated_mb": mb(plain),
           "ratio": plain as f64 / src_bytes as f64})
}

/// E2 — naive annotations vs PNF-suppressed annotations
/// (paper: 3 MB → 0.8 MB ≈ 5.5 %).
fn e2(tagged: &TaggedInstance) -> Json {
    banner("E2", "annotation overhead: naive vs PNF suppression");
    let r = SizeReport::measure(tagged.target());
    println!("  plain instance:      {:>8.2} MB", mb(r.plain));
    println!(
        "  naive annotations:  +{:>8.2} MB  ({:>5.1} %)   (paper: +3 MB ≈ 20.7 %)",
        mb(r.naive_annotation_bytes()),
        100.0 * r.naive_overhead()
    );
    println!(
        "  PNF suppression:    +{:>8.2} MB  ({:>5.1} %)   (paper: +0.8 MB ≈ 5.5 %)",
        mb(r.pnf_annotation_bytes()),
        100.0 * r.pnf_overhead()
    );
    println!(
        "  reduction factor:    {:>8.2}x               (paper: 3.75x)",
        r.naive_annotation_bytes() as f64 / r.pnf_annotation_bytes().max(1) as f64
    );
    json!({"plain_mb": mb(r.plain),
           "naive_overhead_pct": 100.0 * r.naive_overhead(),
           "pnf_overhead_pct": 100.0 * r.pnf_overhead()})
}

/// E3 — the PNF overhead stays flat across source data sizes
/// (paper: "approximately 5.5 % in all the cases").
fn e3(n_full: usize, budget: &Budget, parallel: bool, workers: usize) -> Json {
    banner("E3", "annotation overhead across source data sizes");
    println!("  listings/source   plain MB    PNF overhead");
    let mut rows = Vec::new();
    for frac in [8usize, 4, 2, 1] {
        let n = (n_full / frac).max(10);
        let (tagged, _) = default_tagged(n, budget, parallel, workers);
        let r = SizeReport::measure(tagged.target());
        println!(
            "  {:>14}   {:>8.2}    {:>6.2} %",
            n,
            mb(r.plain),
            100.0 * r.pnf_overhead()
        );
        rows.push(json!({"listings_per_source": n,
                         "plain_mb": mb(r.plain),
                         "pnf_overhead_pct": 100.0 * r.pnf_overhead()}));
    }
    println!("  (paper: ≈5.5 % at every size)");
    Json::Array(rows)
}

/// E4 — storing the schemas and mappings adds ≈0.3 MB.
fn e4(tagged: &TaggedInstance) -> Json {
    banner("E4", "stored schemas + mappings (metastore) size");
    let runner = MetaRunner::new(tagged.setting()).expect("metastore builds");
    let meta_xml = instance_to_xml(runner.meta_source().instance, WriteOptions::plain());
    let schema_xml: usize = tagged
        .setting()
        .source_schemas()
        .iter()
        .map(|s| schema_to_xml(s).len())
        .sum::<usize>()
        + schema_to_xml(tagged.setting().target_schema()).len();
    println!(
        "  metastore instance (7 relations): {:>8.3} MB",
        mb(meta_xml.len())
    );
    println!(
        "  schema XML (6 schemas):           {:>8.3} MB",
        mb(schema_xml)
    );
    println!(
        "  total meta-data:                  {:>8.3} MB   (paper: ≈0.3 MB)",
        mb(meta_xml.len() + schema_xml)
    );
    println!(
        "  rows: {} elements, {} bindings, {} conditions, {} correspondences",
        runner.store().elements.len(),
        runner.store().bindings.len(),
        runner.store().conditions.len(),
        runner.store().correspondences.len()
    );
    json!({"metastore_mb": mb(meta_xml.len()), "schema_xml_mb": mb(schema_xml),
           "total_mb": mb(meta_xml.len() + schema_xml)})
}

/// E5 — overlapping sources lower the annotation bytes
/// (paper: 5.5 % → 4.9 %).
fn e5(n: usize, budget: &Budget) -> Json {
    banner("E5", "annotation overhead under source overlap");
    println!("  overlap   houses   naive ann.   naive/src   PNF ann.   PNF/src");
    let mut rows = Vec::new();
    for overlap in [0.0f64, 0.1, 0.2, 0.3] {
        let scenario = build(ScenarioConfig {
            listings_per_source: n,
            overlap,
            ..Default::default()
        });
        let src = scenario.source_xml_bytes();
        let opts = ExchangeOptions {
            budget: budget.clone(),
            ..ExchangeOptions::default()
        };
        let tagged = guard_exit(scenario.exchange_with(&opts), "the overlap exchange");
        let r = SizeReport::measure(tagged.target());
        let schema = tagged.setting().target_schema();
        let member = schema
            .set_member(schema.resolve_path("/Portal/houses").unwrap())
            .unwrap();
        let houses = tagged.target().interpretation(member).len();
        println!(
            "  {:>6.0} %   {:>6}   {:>7.3} MB   {:>7.2} %   {:>5.3} MB   {:>6.2} %",
            100.0 * overlap,
            houses,
            mb(r.naive_annotation_bytes()),
            100.0 * r.naive_annotation_bytes() as f64 / src as f64,
            mb(r.pnf_annotation_bytes()),
            100.0 * r.pnf_annotation_bytes() as f64 / src as f64,
        );
        rows.push(json!({"overlap": overlap, "houses": houses,
                         "naive_annotation_mb": mb(r.naive_annotation_bytes()),
                         "naive_vs_source_pct": 100.0 * r.naive_annotation_bytes() as f64 / src as f64,
                         "pnf_annotation_mb": mb(r.pnf_annotation_bytes()),
                         "pnf_vs_source_pct": 100.0 * r.pnf_annotation_bytes() as f64 / src as f64}));
    }
    println!(
        "  (paper: overhead drops from 5.5 % to 4.9 % with overlapping sources:\n   \
         merged values share one annotation. The same amount of crawled data\n   \
         needs fewer annotation bytes when it overlaps.)"
    );
    Json::Array(rows)
}

/// E6 — deeper nesting lowers the annotation overhead.
fn e6() -> Json {
    banner("E6", "annotation overhead vs nesting depth");
    println!("  depth   width   leaves   PNF overhead");
    let mut rows = Vec::new();
    for (depth, width) in [(1usize, 4096usize), (2, 64), (3, 16), (4, 8)] {
        let tagged = nested_tagged(depth, width);
        let r = SizeReport::measure(tagged.target());
        let leaves = width.pow(depth as u32);
        println!(
            "  {:>5}   {:>5}   {:>6}   {:>6.2} %",
            depth,
            width,
            leaves,
            100.0 * r.pnf_overhead()
        );
        rows.push(json!({"depth": depth, "width": width,
                         "pnf_overhead_pct": 100.0 * r.pnf_overhead()}));
    }
    println!("  (paper: overhead 'should decrease even further if the number of\n   nested sets increases')");
    Json::Array(rows)
}

fn time_query(tagged: &TaggedInstance, text: &str, reps: usize, budget: &Budget) -> f64 {
    let q = parse_query(text).expect("query parses");
    // Warm up + median of `reps`.
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            let r = guard_exit(tagged.run_budgeted(&q, budget), "a timed query");
            std::hint::black_box(r.len());
            t0.elapsed().as_secs_f64() * 1000.0
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn time_translated(
    tagged: &TaggedInstance,
    runner: &MetaRunner,
    text: &str,
    reps: usize,
    budget: &Budget,
) -> f64 {
    let q = parse_query(text).expect("query parses");
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            let r = guard_exit(
                runner.run_budgeted(tagged, &q, budget),
                "a timed translated query",
            );
            std::hint::black_box(r.len());
            t0.elapsed().as_secs_f64() * 1000.0
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// E7 — MXQL queries show "no significant execution time increase" over
/// plain queries; the translated form is also measured.
fn e7(tagged: &TaggedInstance, budget: &Budget) -> Json {
    banner("E7", "query execution: plain vs MXQL vs translated MXQL");
    let runner = guard_exit(
        MetaRunner::new_budgeted(tagged.setting(), budget),
        "the metastore build",
    );
    let reps = 5;
    let plain = "select h.hid, h.price from Portal.houses h where h.price > 800000";
    let mxql_map = "select h.hid, h.price, m from Portal.houses h, h.price@map m \
                    where h.price > 800000";
    let mxql_pred = "select h.hid, m from Portal.houses h, h.price@map m \
                     where h.price > 800000 and e = h.price@elem \
                       and <'Yahoo':'/Yahoo/listings/price' -> m -> 'Portal':e>";
    let t_plain = time_query(tagged, plain, reps, budget);
    let t_map = time_query(tagged, mxql_map, reps, budget);
    let t_pred = time_query(tagged, mxql_pred, reps, budget);
    let t_tr_map = time_translated(tagged, &runner, mxql_map, reps, budget);
    let t_tr_pred = time_translated(tagged, &runner, mxql_pred, reps, budget);
    println!("  plain selection:                 {t_plain:>9.2} ms");
    println!(
        "  MXQL with @map:                  {t_map:>9.2} ms  ({:+.1} % vs plain)",
        100.0 * (t_map - t_plain) / t_plain
    );
    println!(
        "  MXQL with mapping predicate:     {t_pred:>9.2} ms  ({:+.1} % vs plain)",
        100.0 * (t_pred - t_plain) / t_plain
    );
    println!("  translated (@map):               {t_tr_map:>9.2} ms");
    println!("  translated (mapping predicate):  {t_tr_pred:>9.2} ms");
    println!("  (paper: 'no significant execution time increase')");
    json!({"plain_ms": t_plain, "mxql_map_ms": t_map, "mxql_pred_ms": t_pred,
           "translated_map_ms": t_tr_map, "translated_pred_ms": t_tr_pred})
}

/// E8 — debugging the `housesInNeighborhood` mapping.
fn e8(n: usize, budget: &Budget) -> Json {
    banner(
        "E8",
        "debugging housesInNeighborhood (buggy vs fixed self-join)",
    );
    let mut out = serde_json::Map::new();
    for buggy in [true, false] {
        let scenario = build(ScenarioConfig {
            listings_per_source: (n / 10).clamp(30, 400),
            buggy_neighborhood_join: buggy,
            ..Default::default()
        });
        let opts = ExchangeOptions {
            budget: budget.clone(),
            ..ExchangeOptions::default()
        };
        let tagged = guard_exit(scenario.exchange_with(&opts), "the debugging exchange");
        // Count cross-city "neighbors" (the misleading data).
        let all = tagged
            .query("select h.hid, h.city from Portal.houses h")
            .expect("query runs");
        let mut city_of = std::collections::HashMap::new();
        for row in all.tuples() {
            city_of.insert(row[0].to_string(), row[1].to_string());
        }
        let pairs = tagged
            .query(
                "select h.hid, h.city, b.hid
                 from Portal.houses h, h.housesInNeighborhood b",
            )
            .expect("query runs");
        let total = pairs.len();
        let cross = pairs
            .tuples()
            .iter()
            .filter(|row| {
                city_of
                    .get(&row[2].to_string())
                    .is_some_and(|c| *c != row[1].to_string())
            })
            .count();
        // The diagnostic queries of the paper's session.
        let join_elems = {
            let runner = MetaRunner::new(tagged.setting()).expect("metastore builds");
            let mut catalog = tagged.catalog();
            catalog.push(runner.meta_source());
            let q = parse_query(
                "select e.name from Mapping m, Condition c, Element e
                 where m.mid = 'hs2' and c.qid = m.forQ and c.eid = e.eid",
            )
            .unwrap();
            let r = dtr_query::eval::Evaluator::new(&catalog, tagged.functions())
                .run(&q)
                .expect("metadata query runs");
            let mut names: Vec<String> = r.tuples().iter().map(|t| t[0].to_string()).collect();
            names.sort();
            names.dedup();
            names
        };
        let label = if buggy { "buggy" } else { "fixed" };
        println!(
            "  {label:>5}: {total:>7} neighbor pairs, {cross:>6} cross-city ({:.1} %), \
             self-join on {join_elems:?}",
            100.0 * cross as f64 / total.max(1) as f64
        );
        out.insert(
            label.to_string(),
            json!({"pairs": total, "cross_city": cross, "join_elements": join_elems}),
        );
    }
    println!(
        "  (paper: neighborhoods with the same name in different states generated\n   \
         misleading data; joining on city, state and neighborhood corrected it)"
    );
    Json::Object(out)
}

/// E9 — the schoolDistrict accuracy finding.
fn e9(tagged: &TaggedInstance) -> Json {
    banner(
        "E9",
        "schoolDistrict accuracy (single source element feeds three)",
    );
    // Observation: for some houses all three districts coincide.
    let r = tagged
        .query(
            "select h.hid from Portal.houses h
             where h.schools.elementary = h.schools.middle
               and h.schools.middle = h.schools.high",
        )
        .expect("query runs");
    let equal = r.len();
    let total = tagged
        .query("select h.hid from Portal.houses h")
        .expect("query runs")
        .len();
    println!("  houses with identical elementary/middle/high districts: {equal} / {total}");
    // Diagnosis: where do the three school elements of those houses come
    // from? (The paper's MXQL query, per target element.)
    let mut origins = Vec::new();
    for target in [
        "/Portal/houses/schools/elementary",
        "/Portal/houses/schools/middle",
        "/Portal/houses/schools/high",
    ] {
        let r = tagged
            .query(&format!(
                "select e from where <'NKdb':e -> m -> 'Portal':'{target}'>"
            ))
            .expect("query runs");
        let elems: Vec<String> = r
            .distinct_tuples()
            .iter()
            .map(|t| t[0].to_string())
            .collect();
        println!("  {target} <- {elems:?}");
        origins.push(json!({"target": target, "nk_sources": elems}));
    }
    println!(
        "  (paper: 'all three elements were retrieving their values from a single\n   \
         element schoolDistrict' of the Realtors source)"
    );
    json!({"equal_district_houses": equal, "total_houses": total, "origins": origins})
}

/// E10 — durable exchange: WAL-backed commits, crash, recovery.
///
/// Builds the portal scenario behind a write-ahead log (in-memory VFS, so
/// the run leaves no files behind), commits churn batches through the
/// WAL-then-publish protocol, then simulates a crash by recovering from a
/// copy of the "disk" and verifies the recovered canonical target is
/// byte-identical to the live one.
fn e10(n: usize, budget: &Budget) -> Json {
    banner("E10", "durable exchange (WAL commit, crash, recovery)");
    let scenario = build(ScenarioConfig {
        listings_per_source: n,
        ..Default::default()
    });
    let opts = DurableOptions {
        exchange: ExchangeOptions {
            budget: budget.clone(),
            ..ExchangeOptions::default()
        },
        checkpoint_every: 0,
        ..DurableOptions::default()
    };
    let vfs = Arc::new(MemVfs::new());
    let t0 = Instant::now();
    let mut session = guard_exit(
        DurableSession::create(
            scenario.setting,
            scenario.sources,
            None,
            vfs.clone(),
            "wal",
            opts.clone(),
        ),
        "the durable exchange",
    );
    let create_s = t0.elapsed().as_secs_f64();
    // Churn: rewrite the comments of the first ~1 % of Yahoo listings,
    // one batch per round, each committed to the log before it is applied.
    const BATCHES: usize = 5;
    let t1 = Instant::now();
    for round in 0..BATCHES {
        let inst = &session.session().sources()[0];
        let root = inst.root("Yahoo").expect("Yahoo root");
        let set = inst.child_by_label(root, "listings").expect("listings set");
        let members = inst.set_members(set).expect("set members").to_vec();
        let k = (members.len() / 100).clamp(1, members.len());
        let mut delta = SourceDelta::new();
        for i in (0..k).rev() {
            let mut v = inst.to_value(members[i]);
            if let Value::Record(fields) = &mut v {
                for (l, f) in fields.iter_mut() {
                    if l.as_str() == "comments" {
                        *f = Value::str(format!("e10-round-{round}-{i}"));
                    }
                }
            }
            delta = delta.modify("Yahoo.listings", i, v);
        }
        guard_exit(session.apply(&delta), "a durable churn batch");
    }
    let apply_s = t1.elapsed().as_secs_f64();
    let wal_commit_ms = session.wal_commit_nanos() as f64 / 1e6;
    let publish_ms = session.publish_nanos() as f64 / 1e6;
    let log_bytes = session.wal_committed_len();
    let live = write_instance(
        session.session().target(),
        dtr_xml::writer::WriteOptions::annotated(),
    );
    // Crash: the writer dies; all that survives is the "disk".
    let crashed = vfs.clone_files();
    drop(session);
    let t2 = Instant::now();
    let (recovered, report) = guard_exit(
        DurableSession::open(Arc::new(crashed), "wal", opts),
        "crash recovery",
    );
    let recover_s = t2.elapsed().as_secs_f64();
    let byte_identical = recovered.pin().canonical() == live;
    println!(
        "  created durable session in {create_s:.2} s; {BATCHES} churn batches in {apply_s:.3} s \
         (log commit {wal_commit_ms:.2} ms, snapshot publish {publish_ms:.2} ms)"
    );
    println!(
        "  crash + recovery: replayed {} delta(s) from a {log_bytes}-byte log in {recover_s:.3} s; \
         recovered target byte-identical: {byte_identical}",
        report.replayed
    );
    assert!(byte_identical, "recovery drifted from the live state");
    assert_eq!(report.replayed, BATCHES);
    json!({
        "create_s": create_s,
        "batches": BATCHES,
        "apply_s": apply_s,
        "wal_commit_ms": wal_commit_ms,
        "publish_ms": publish_ms,
        "log_bytes": log_bytes,
        "recover_s": recover_s,
        "replayed": report.replayed,
        "byte_identical": byte_identical,
    })
}

fn main() {
    // `experiments health ...` is a separate mode: a fixed workload whose
    // observable shape is compared against a committed baseline.
    if std::env::args().nth(1).as_deref() == Some("health") {
        health_mode(std::env::args().skip(2).collect());
    }
    let args = parse_args();
    if args.profile {
        dtr_obs::set_enabled(true);
    }
    if args.stats {
        dtr_obs::stats::set_enabled(true);
    }
    if args.trace_out.is_some() {
        dtr_obs::recorder::set_enabled(true);
        dtr_obs::recorder::reset();
    }
    if let Some(path) = &args.audit_out {
        dtr_obs::audit::set_enabled(true);
        dtr_obs::audit::reset();
        let sink = dtr_obs::audit::FileSink::create(std::path::Path::new(path))
            .unwrap_or_else(|e| io_exit("open audit sink", path, e));
        dtr_obs::audit::set_sink(Some(Box::new(sink)));
    }
    if dtr_obs::enabled() {
        dtr_obs::profile_reset();
    }
    if dtr_obs::stats::enabled() {
        dtr_obs::stats::reset();
    }
    println!(
        "Section 8 experiment harness — {} listings per source ({} total)",
        args.listings_per_source,
        5 * args.listings_per_source
    );
    let needs_default = args
        .run
        .iter()
        .any(|e| ["e1", "e2", "e4", "e7", "e9"].contains(e));
    let shared = if needs_default {
        let t0 = Instant::now();
        let pair = default_tagged(
            args.listings_per_source,
            &args.budget,
            args.parallel,
            args.workers,
        );
        println!(
            "built + exchanged default scenario in {:.1} s ({} portal nodes)",
            t0.elapsed().as_secs_f64(),
            pair.0.target().len()
        );
        Some(pair)
    } else {
        None
    };

    let mut results = serde_json::Map::new();
    for e in &args.run {
        let value = match *e {
            "e1" => {
                let (t, src) = shared.as_ref().expect("shared scenario");
                e1(t, *src)
            }
            "e2" => e2(&shared.as_ref().expect("shared scenario").0),
            "e3" => e3(
                args.listings_per_source,
                &args.budget,
                args.parallel,
                args.workers,
            ),
            "e4" => e4(&shared.as_ref().expect("shared scenario").0),
            "e5" => e5(args.listings_per_source, &args.budget),
            "e6" => e6(),
            "e7" => e7(&shared.as_ref().expect("shared scenario").0, &args.budget),
            "e8" => e8(args.listings_per_source, &args.budget),
            "e9" => e9(&shared.as_ref().expect("shared scenario").0),
            "e10" => e10(args.listings_per_source, &args.budget),
            other => panic!("unknown experiment {other}"),
        };
        results.insert((*e).to_string(), value);
    }

    let profile = if dtr_obs::enabled() {
        let p = dtr_obs::profile_snapshot();
        println!("\n{}", p.render());
        let snap = dtr_obs::counters().span_duration_ns.snapshot();
        if let Some((p50, p90, p99)) = dtr_obs::snapshot_percentiles(&snap) {
            println!("span latency: p50 {p50} ns, p90 {p90} ns, p99 {p99} ns");
        }
        Some(p)
    } else {
        None
    };
    let stats = if dtr_obs::stats::enabled() {
        let c = dtr_obs::stats::snapshot();
        println!(
            "\nstatistics catalog: {} path(s), {} join key(s)",
            c.paths.len(),
            c.joins.len()
        );
        Some(c)
    } else {
        None
    };

    if let Some(path) = &args.trace_out {
        let doc = dtr_obs::chrome_trace::export_current();
        let summary = dtr_obs::chrome_trace::validate(&doc).expect("exported trace is valid");
        std::fs::write(path, serde_json::to_string(&doc).expect("serializable"))
            .unwrap_or_else(|e| io_exit("write trace", path, e));
        println!(
            "\nflight trace written to {path}: {} event(s) ({} duration, {} counter) \
             across {} thread(s) — load it in Perfetto or chrome://tracing",
            summary.events, summary.duration_events, summary.counter_events, summary.distinct_tids
        );
    }
    if let Some(path) = &args.audit_out {
        let (recorded, _, dropped, _) = dtr_obs::audit::counts();
        println!(
            "audit log written to {path}: {recorded} record(s) ({dropped} dropped by the ring)"
        );
    }

    if let Some(path) = args.json_path {
        if let Some(p) = &profile {
            results.insert("profile".to_string(), p.to_json());
            let snap = dtr_obs::counters().span_duration_ns.snapshot();
            if let Some((p50, p90, p99)) = dtr_obs::snapshot_percentiles(&snap) {
                results.insert(
                    "latency_ns".to_string(),
                    json!({"span_p50": p50, "span_p90": p90, "span_p99": p99}),
                );
            }
        }
        if let Some(c) = &stats {
            results.insert("stats".to_string(), c.to_json());
        }
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&Json::Object(results)).expect("serializable"),
        )
        .unwrap_or_else(|e| io_exit("write JSON results", &path, e));
        println!("\nresults written to {path}");
    }
}

/// The fixed query mix of the health workload (a subset of E7 plus a
/// metadata lookup), chosen so exchange, direct evaluation, and the
/// translated pipeline all contribute counters.
const HEALTH_QUERIES: &[&str] = &[
    "select h.hid, h.price from Portal.houses h where h.price > 800000",
    "select h.hid, h.price, m from Portal.houses h, h.price@map m where h.price > 800000",
    "select h.hid, m from Portal.houses h, h.price@map m \
     where h.price > 800000 and e = h.price@elem \
       and <'Yahoo':'/Yahoo/listings/price' -> m -> 'Portal':e>",
];

/// `experiments health`: run a deterministic sequential workload, capture
/// its observable shape (counters, statistics catalog, span latency), and
/// compare it against a committed baseline with `dtr_obs::health`.
///
/// ```text
/// experiments health --update                    # (re)write the baseline
/// experiments health                             # compare, exit 2 on fail
/// experiments health --report-only               # compare, always exit 0
/// experiments health --inject-drift              # synthetic drift (self-test)
/// ```
///
/// Exit status: 0 on `ok`/`warn` (latency checks are machine-dependent and
/// warn-only), 2 on `fail` — unless `--report-only`.
fn health_mode(argv: Vec<String>) -> ! {
    let mut baseline_path = "HEALTH_BASELINE.json".to_string();
    let mut out_path: Option<String> = None;
    let mut thresholds = dtr_obs::health::Thresholds::default();
    let mut update = false;
    let mut inject_drift = false;
    let mut report_only = false;
    let mut scale = 200usize;
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => baseline_path = it.next().expect("--baseline takes a path"),
            "--out" => out_path = it.next(),
            "--warn-pct" => {
                thresholds.warn_pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--warn-pct takes a number");
            }
            "--fail-pct" => {
                thresholds.fail_pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--fail-pct takes a number");
            }
            "--update" => update = true,
            "--inject-drift" => inject_drift = true,
            "--report-only" => report_only = true,
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale takes a number");
            }
            other => {
                eprintln!("unknown health flag {other}");
                std::process::exit(2);
            }
        }
    }

    // The workload must produce the same counters on every machine: spans
    // and stats on, sequential exchange, fixed scale and query mix.
    dtr_obs::set_enabled(true);
    dtr_obs::stats::set_enabled(true);
    dtr_obs::profile_reset();
    dtr_obs::stats::reset();
    let scenario = build(ScenarioConfig {
        listings_per_source: scale,
        ..Default::default()
    });
    let tagged = scenario
        .exchange_with(&ExchangeOptions::default())
        .expect("health exchange");
    let runner = MetaRunner::new(tagged.setting()).expect("metastore builds");
    for text in HEALTH_QUERIES {
        let q = parse_query(text).expect("health query parses");
        std::hint::black_box(tagged.run(&q).expect("health query runs").len());
    }
    // The translated pipeline exercises the metastore path too.
    let q = parse_query(HEALTH_QUERIES[1]).expect("health query parses");
    std::hint::black_box(
        runner
            .run(&tagged, &q)
            .expect("translated health query")
            .len(),
    );

    let catalog = dtr_obs::stats::snapshot();
    let mut live = dtr_obs::health::HealthSnapshot::capture(&catalog);
    if inject_drift {
        // Synthetic anomaly: the engine "did three times the work".
        for (_, v) in live.counters.iter_mut() {
            *v = *v * 3 + 1000;
        }
        live.stats_tuples = live.stats_tuples * 3 + 1000;
    }

    if update {
        std::fs::write(
            &baseline_path,
            serde_json::to_string_pretty(&live.to_json()).expect("serializable"),
        )
        .unwrap_or_else(|e| io_exit("write baseline", &baseline_path, e));
        println!(
            "health baseline written to {baseline_path}: {} counter(s), {} stats path(s)",
            live.counters.len(),
            live.stats_paths
        );
        std::process::exit(0);
    }

    let text = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!("health: cannot read baseline {baseline_path}: {e}");
        eprintln!("run `experiments health --update` to create it");
        std::process::exit(2);
    });
    let doc: Json = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("health: baseline {baseline_path} is not JSON: {e}");
        eprintln!("run `experiments health --update` to regenerate it");
        std::process::exit(2);
    });
    let baseline = dtr_obs::health::HealthSnapshot::from_json(&doc).unwrap_or_else(|e| {
        eprintln!("health: baseline {baseline_path} has an unexpected shape: {e}");
        eprintln!("run `experiments health --update` to regenerate it");
        std::process::exit(2);
    });
    let report = dtr_obs::health::compare(&baseline, &live, &thresholds);
    println!("{}", report.render());
    if let Some(path) = out_path {
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&report.to_json()).expect("serializable"),
        )
        .unwrap_or_else(|e| io_exit("write health report", &path, e));
        println!("health report written to {path}");
    }
    let code = match report.status {
        dtr_obs::health::Status::Fail if !report_only => 2,
        _ => 0,
    };
    std::process::exit(code);
}
