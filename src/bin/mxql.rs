//! An interactive MXQL shell over a tagged instance.
//!
//! ```text
//! cargo run --release --bin mxql                 # the Figure 1 example
//! cargo run --release --bin mxql -- --portal 100 # the Section 8 portal
//! cargo run --release --bin mxql -- --profile    # per-query EXPLAIN profile
//! ```
//!
//! Enter MXQL queries terminated by `;`. Meta-commands:
//!
//! * `.mappings` — list the mappings of the setting;
//! * `.schema <db>` — print a schema as an element tree;
//! * `.store` — dump the Figure 5 metastore relations;
//! * `.translate <query>;` — show the Section 7.3 translation;
//! * `.mode direct|translated|virtual` — switch the execution engine
//!   (`virtual` answers plain target queries over the sources, never
//!   touching the materialized instance);
//! * `.lint` — run the mapping diagnostics;
//! * `.whatif <db|mapping,...>` — impact analysis;
//! * `.save <file>` — write the annotated instance as XML;
//! * `.profile [on|off|json]` — toggle or dump the `dtr-obs` profile
//!   (also enabled by `--profile` or `DTR_PROFILE=1`);
//! * `.help`, `.quit`.

use dtr::core::runner::MetaRunner;
use dtr::core::tagged::TaggedInstance;
use dtr::core::testkit;
use dtr::core::translate::translate;
use dtr::core::virtualize::answer_virtually;
use dtr::core::whatif::{impact_of_mappings, impact_of_source};
use dtr::mapping::lint::lint_mappings;
use dtr::model::schema::Schema;
use dtr::model::value::MappingName;
use dtr::portal::scenario::{tagged as portal_tagged, ScenarioConfig};
use dtr::query::parser::parse_query;
use std::io::{BufRead, Write};

enum Mode {
    Direct,
    Translated,
    Virtual,
}

fn load() -> TaggedInstance {
    let mut portal: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--portal" => {
                portal = Some(args.next().and_then(|s| s.parse().ok()).unwrap_or(100));
            }
            "--profile" => dtr_obs::set_enabled(true),
            other => eprintln!("unknown flag {other} (ignored)"),
        }
    }
    match portal {
        Some(n) => {
            eprintln!("building the Section 8 portal ({n} listings per source)...");
            portal_tagged(ScenarioConfig {
                listings_per_source: n,
                ..Default::default()
            })
        }
        None => {
            eprintln!("loading the Figure 1 running example (use --portal N for Section 8)");
            testkit::figure1()
        }
    }
}

fn help() {
    println!("enter an MXQL query terminated by `;`, e.g.");
    println!("  select x.hid, m from Portal.estates x, x.value@map m;");
    println!("meta commands: .mappings  .schema <db>  .store  .translate <q>;");
    println!("               .mode direct|translated|virtual  .lint");
    println!("               .whatif <db|m1,m2,...>  .save <file>");
    println!("               .profile [on|off|json]  .help  .quit");
}

fn main() {
    let tagged = load();
    let runner = MetaRunner::new(tagged.setting()).expect("metastore builds");
    let mut mode = Mode::Direct;
    eprintln!(
        "tagged instance ready: {} target values, {} mappings. Type .help for help.",
        tagged.target().len(),
        tagged.setting().mappings().len()
    );

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    print!("mxql> ");
    let _ = std::io::stdout().flush();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            let (cmd, rest) = trimmed.split_once(' ').unwrap_or((trimmed, ""));
            match cmd {
                ".quit" | ".exit" => break,
                ".help" => help(),
                ".mappings" => {
                    for m in tagged.setting().mappings() {
                        println!("{m}\n");
                    }
                }
                ".store" => println!("{}", runner.store().render()),
                ".profile" => match rest.trim() {
                    "on" => {
                        dtr_obs::set_enabled(true);
                        dtr_obs::profile_reset();
                        println!("profiling on");
                    }
                    "off" => {
                        dtr_obs::set_enabled(false);
                        println!("profiling off");
                    }
                    "json" => println!("{}", dtr_obs::profile_snapshot().to_json_string()),
                    _ => println!("{}", dtr_obs::profile_snapshot().render()),
                },
                ".mode" => {
                    mode = match rest.trim() {
                        "translated" => {
                            println!("executing through the Section 7.3 translation");
                            Mode::Translated
                        }
                        "virtual" => {
                            println!("answering plain target queries virtually over the sources");
                            Mode::Virtual
                        }
                        _ => {
                            println!("executing with the direct Section 5 semantics");
                            Mode::Direct
                        }
                    };
                }
                ".lint" => {
                    let schemas: Vec<&Schema> = tagged.setting().source_schemas().iter().collect();
                    match lint_mappings(
                        tagged.setting().mappings(),
                        &schemas,
                        tagged.setting().target_schema(),
                    ) {
                        Ok(lints) => {
                            for l in &lints {
                                println!("  - {l}");
                            }
                            println!("({} findings)", lints.len());
                        }
                        Err(e) => println!("lint error: {e}"),
                    }
                }
                ".whatif" => {
                    let arg = rest.trim();
                    let impact = if arg.contains(',')
                        || tagged.setting().mapping(&MappingName::new(arg)).is_some()
                    {
                        let removed: Vec<MappingName> =
                            arg.split(',').map(|m| MappingName::new(m.trim())).collect();
                        impact_of_mappings(&tagged, &removed)
                    } else {
                        impact_of_source(&tagged, arg)
                    };
                    println!(
                        "lost {} values ({:.1} %), {} survive",
                        impact.lost_values,
                        100.0 * impact.lost_fraction(),
                        impact.surviving_values
                    );
                    for (path, n) in impact.lost_by_element.iter().take(8) {
                        println!("  {path}  ({n})");
                    }
                }
                ".save" => {
                    let path = rest.trim();
                    if path.is_empty() {
                        println!("usage: .save <file.xml>");
                    } else {
                        let xml = dtr::xml::writer::instance_to_xml(
                            tagged.target(),
                            dtr::xml::writer::WriteOptions::annotated(),
                        );
                        match std::fs::write(path, &xml) {
                            Ok(()) => println!("wrote {} bytes to {path}", xml.len()),
                            Err(e) => println!("cannot write {path}: {e}"),
                        }
                    }
                }
                ".schema" => {
                    let db = rest.trim();
                    let schema = if tagged.setting().target_schema().name() == db {
                        Some(tagged.setting().target_schema())
                    } else {
                        tagged.setting().source_schema(db)
                    };
                    match schema {
                        Some(s) => {
                            for (id, el) in s.elements() {
                                println!(
                                    "  {id:>5}  {:<28} {:<7} {}",
                                    s.path(id),
                                    el.kind.name(),
                                    el.label
                                );
                            }
                        }
                        None => println!(
                            "unknown database `{db}`; try `{}` or a source name",
                            tagged.setting().target_schema().name()
                        ),
                    }
                }
                ".translate" => {
                    let text = rest.trim().trim_end_matches(';');
                    match parse_query(text) {
                        Ok(q) => {
                            let q = tagged.setting().normalize_query(&q);
                            match translate(&q, tagged.target().db()) {
                                Ok(branches) => {
                                    for (i, b) in branches.iter().enumerate() {
                                        if branches.len() > 1 {
                                            println!("-- union branch {} --", i + 1);
                                        }
                                        println!("{b}\n");
                                    }
                                }
                                Err(e) => println!("translation error: {e}"),
                            }
                        }
                        Err(e) => println!("parse error: {e}"),
                    }
                }
                other => println!("unknown command {other}; try .help"),
            }
            print!("mxql> ");
            let _ = std::io::stdout().flush();
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if !trimmed.ends_with(';') {
            print!("  ..> ");
            let _ = std::io::stdout().flush();
            continue;
        }
        let text = buffer.trim().trim_end_matches(';').to_owned();
        buffer.clear();
        if dtr_obs::enabled() {
            dtr_obs::profile_reset();
        }
        let t0 = std::time::Instant::now();
        let result = match mode {
            Mode::Direct => tagged.query(&text),
            Mode::Translated => runner.query(&tagged, &text),
            Mode::Virtual => parse_query(&text)
                .map_err(dtr::core::tagged::MxqlError::from)
                .and_then(|q| {
                    answer_virtually(
                        tagged.setting(),
                        tagged.source_instances(),
                        &q,
                        tagged.functions(),
                    )
                }),
        };
        match result {
            Ok(r) => {
                print!("{}", r.to_table());
                println!(
                    "({} rows in {:.1} ms)",
                    r.len(),
                    t0.elapsed().as_secs_f64() * 1e3
                );
                if dtr_obs::enabled() {
                    println!("{}", dtr_obs::profile_snapshot().render());
                }
            }
            Err(e) => println!("error: {e}"),
        }
        print!("mxql> ");
        let _ = std::io::stdout().flush();
    }
    println!();
}
