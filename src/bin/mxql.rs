//! An interactive MXQL shell over a tagged instance.
//!
//! ```text
//! cargo run --release --bin mxql                 # the Figure 1 example
//! cargo run --release --bin mxql -- --portal 100 # the Section 8 portal
//! cargo run --release --bin mxql -- --profile    # per-query EXPLAIN profile
//! ```
//!
//! Enter MXQL queries terminated by `;`. Meta-commands:
//!
//! * `.mappings` — list the mappings of the setting;
//! * `.schema <db>` — print a schema as an element tree;
//! * `.store` — dump the Figure 5 metastore relations;
//! * `.translate <query>;` — show the Section 7.3 translation;
//! * `.mode direct|translated|virtual` — switch the execution engine
//!   (`virtual` answers plain target queries over the sources, never
//!   touching the materialized instance);
//! * `.lint` — run the mapping diagnostics;
//! * `.whatif <db|mapping,...>` — impact analysis;
//! * `.save <file>` — write the annotated instance as XML; `.save wal
//!   <dir>` instead starts a *durable* session: every later `.delta`
//!   batch is committed to a write-ahead log in `<dir>` before it is
//!   applied;
//! * `.open <dir>` — recover a durable session from its write-ahead log
//!   (after a crash or a clean exit): loads the latest intact checkpoint,
//!   replays the committed delta suffix, reports torn tails as warnings;
//! * `.checkpoint` — fold the durable session's delta suffix into a fresh
//!   checkpoint segment (renormalizing the target to canonical form);
//! * `.profile [on|off|json]` — toggle or dump the `dtr-obs` profile
//!   (also enabled by `--profile` or `DTR_PROFILE=1`);
//! * `.explain <query>;` — translation EXPLAIN: every Section 7.3 rewrite
//!   step plus the final plain quer(ies), followed by the cost-based
//!   planner's logical/physical plan with estimated vs actual rows;
//! * `.analyze <query>;` — EXPLAIN ANALYZE: run the query with
//!   per-operator instrumentation and print the operator tree (actual rows
//!   in/out, wall time, guard charges per scan/bind/filter/hash-join
//!   stage); the result is byte-identical to a plain run;
//! * `.stats [on|off|json]` — dump (or toggle) the statistics catalog
//!   gathered while queries and exchanges run: per-path tuple counts,
//!   distinct-value estimates, set-cardinality histograms, and observed
//!   equality-join selectivities (on by default in this shell; also
//!   `DTR_STATS=1`);
//! * `.trace <path> [value]` — replay a target value's journal lineage
//!   (mapping → source binding → insert/merge events), cross-checked
//!   against the Section 6 where-provenance query;
//! * `.journal [on|off|json|export <file>]` — inspect or export the
//!   provenance event journal (on by default in this shell; bounded by
//!   `DTR_JOURNAL_CAP`, default 64k events);
//! * `.timeline [on|off|export <file>]` — the flight recorder: a bounded
//!   ring of timestamped span/counter/guard/exchange events (`DTR_FLIGHT=1`
//!   to capture from process start); `export` writes Chrome Trace Event
//!   JSON loadable in Perfetto or `chrome://tracing`;
//! * `.audit [on|off|last|export <file>]` — the per-request audit log: one
//!   record per query/exchange/translation with fingerprint, row counts,
//!   wall latency, and guard outcome (`DTR_AUDIT=1`); `export` writes
//!   JSONL;
//! * `.limits [off | <key> <n> ...]` — resource budget for direct and
//!   translated query execution (`deadline-ms`, `max-rows`,
//!   `max-bindings`, `max-bytes`); an exhausted budget aborts the query
//!   with a structured guard error, never a panic;
//! * `.delta <op> <path> <idx> [...]` — apply source edits through the
//!   incremental exchange engine (`del US.houses 0`, `dup US.houses 1`,
//!   `mod US.houses 0 price=1M`; chain edits with `|`); the target is
//!   maintained in place — only affected mappings re-evaluate and only
//!   touched member classes rebuild;
//! * `.rebase` — drop the incremental state and rebuild the target from
//!   the current (edited) sources with a full exchange;
//! * `.help` (the full listing), `.quit`.

use dtr::core::provenance::{provenance_of, ProvenanceKind};
use dtr::core::runner::MetaRunner;
use dtr::core::tagged::TaggedInstance;
use dtr::core::testkit;
use dtr::core::translate::{translate, translate_explained};
use dtr::core::virtualize::answer_virtually;
use dtr::core::whatif::{impact_of_mappings, impact_of_source};
use dtr::mapping::lint::lint_mappings;
use dtr::model::schema::Schema;
use dtr::model::value::MappingName;
use dtr::portal::scenario::{tagged as portal_tagged, ScenarioConfig};
use dtr::query::parser::parse_query;
use dtr_obs::guard::Budget;
use std::io::{BufRead, Write};
use std::time::Duration;

enum Mode {
    Direct,
    Translated,
    Virtual,
}

fn load() -> TaggedInstance {
    // The journal is on by default in this interactive shell (ring-bounded,
    // so always-on capture stays safe): enabling it *before* the exchange
    // runs is what gives `.trace` its lineage. `DTR_JOURNAL=0` or
    // `.journal off` disable it.
    if std::env::var("DTR_JOURNAL").is_err() {
        dtr_obs::journal::set_enabled(true);
    }
    // Statistics collection likewise defaults on in the shell: the catalog
    // is a handful of maps updated once per run, and having the exchange's
    // instance walk in it is what makes `.stats` useful immediately.
    if std::env::var("DTR_STATS").is_err() {
        dtr_obs::stats::set_enabled(true);
    }
    let mut portal: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--portal" => {
                portal = Some(args.next().and_then(|s| s.parse().ok()).unwrap_or(100));
            }
            "--profile" => dtr_obs::set_enabled(true),
            "--no-journal" => dtr_obs::journal::set_enabled(false),
            other => eprintln!("unknown flag {other} (ignored)"),
        }
    }
    match portal {
        Some(n) => {
            eprintln!("building the Section 8 portal ({n} listings per source)...");
            portal_tagged(ScenarioConfig {
                listings_per_source: n,
                ..Default::default()
            })
        }
        None => {
            eprintln!("loading the Figure 1 running example (use --portal N for Section 8)");
            testkit::figure1()
        }
    }
}

/// Every dot-command the dispatch in `main` understands, with the
/// one-line description `.help` prints. A unit test asserts this table
/// stays in sync with the dispatch `match` — add new commands here first.
const COMMANDS: &[(&str, &str)] = &[
    (".mappings", "list the mappings of the setting"),
    (".schema", "<db> — print a schema as an element tree"),
    (".store", "dump the Figure 5 metastore relations"),
    (".translate", "<query>; — show the Section 7.3 translation"),
    (
        ".explain",
        "<query>; — translation rewrite steps, then the logical/physical plan with estimated vs actual rows",
    ),
    (
        ".analyze",
        "<query>; — EXPLAIN ANALYZE: per-operator rows, wall time, guard charges",
    ),
    (
        ".mode",
        "direct|translated|virtual — switch the execution engine",
    ),
    (".lint", "run the mapping diagnostics"),
    (".whatif", "<db|m1,m2,...> — impact analysis"),
    (
        ".save",
        "<file> — write the annotated instance as XML; `wal <dir>` starts a durable WAL-backed session",
    ),
    (
        ".open",
        "<dir> — recover a durable session from its write-ahead log",
    ),
    (
        ".checkpoint",
        "fold the durable session's delta suffix into a fresh checkpoint segment",
    ),
    (
        ".profile",
        "[on|off|json] — toggle or dump the dtr-obs profile tree",
    ),
    (
        ".stats",
        "[on|off|json|reset] — the statistics catalog (paths, joins, histograms)",
    ),
    (
        ".trace",
        "<path> [value] — replay a target value's journal lineage",
    ),
    (
        ".journal",
        "[on|off|json|export <file>] — the provenance event journal",
    ),
    (
        ".timeline",
        "[on|off|export <file>] — the flight recorder; export is Perfetto-loadable",
    ),
    (
        ".audit",
        "[on|off|last|export <file>] — the per-request audit log (JSONL)",
    ),
    (
        ".limits",
        "[off | deadline-ms N | max-rows N | max-bindings N | max-bytes N]",
    ),
    (
        ".delta",
        "del|dup|mod <path> <idx> [f=v] — incremental source edits (chain with |)",
    ),
    (
        ".rebase",
        "rebuild the target from the edited sources with a full exchange",
    ),
    (".help", "this listing"),
    (".quit", "leave the shell"),
    (".exit", "alias of .quit"),
];

fn help() {
    println!("enter an MXQL query terminated by `;`, e.g.");
    println!("  select x.hid, m from Portal.estates x, x.value@map m;");
    println!("meta commands:");
    for (name, desc) in COMMANDS {
        println!("  {name:<11} {desc}");
    }
}

/// Parses `.limits` arguments into a fresh budget: `off` clears every
/// limit; otherwise `<key> <n>` pairs tighten the current one.
fn parse_limits(rest: &str, current: &Budget) -> Result<Budget, String> {
    let args: Vec<&str> = rest.split_whitespace().collect();
    if args == ["off"] {
        return Ok(Budget::unlimited());
    }
    let mut budget = current.clone();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let value: u64 = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("`{key}` takes a number"))?;
        match *key {
            "deadline-ms" => budget.deadline = Some(Duration::from_millis(value)),
            "max-rows" => budget.max_rows = Some(value),
            "max-bindings" => budget.max_bindings = Some(value),
            "max-bytes" => budget.max_result_bytes = Some(value),
            other => return Err(format!("unknown limit `{other}`")),
        }
    }
    Ok(budget)
}

/// Prints the active limits (the `.limits` no-argument form).
fn show_limits(budget: &Budget) {
    if !budget.is_limited() {
        println!("limits: off (unlimited)");
        return;
    }
    let fmt = |v: Option<u64>| v.map_or("-".to_string(), |n| n.to_string());
    println!(
        "limits: deadline-ms {}  max-rows {}  max-bindings {}  max-bytes {}",
        budget
            .deadline
            .map_or("-".to_string(), |d| d.as_millis().to_string()),
        fmt(budget.max_rows),
        fmt(budget.max_bindings),
        fmt(budget.max_result_bytes),
    );
    println!("(applies to direct and translated execution; `.limits off` clears)");
}

/// Parses the `.delta` edit mini-language against the session's current
/// sources: `del <path> <idx>` removes a member, `dup <path> <idx>`
/// re-inserts a copy of one, and `mod <path> <idx> <field>=<value>`
/// replaces one atomic field of a member. Edits chain with `|` and apply
/// as one atomic batch.
fn parse_delta_edits(
    rest: &str,
    sources: &[dtr::model::instance::Instance],
) -> Result<dtr::mapping::delta::SourceDelta, String> {
    use dtr::mapping::delta::SourceDelta;
    use dtr::model::instance::Value;
    let member_value = |path: &str, idx: usize| -> Result<Value, String> {
        let mut parts = path.split('.');
        let root = parts.next().unwrap_or_default();
        let (inst, mut node) = sources
            .iter()
            .find_map(|s| s.root(root).map(|n| (s, n)))
            .ok_or_else(|| format!("no source has a root `{root}`"))?;
        for label in parts {
            node = inst
                .child_by_label(node, label)
                .ok_or_else(|| format!("`{path}`: no field `{label}`"))?;
        }
        let members = inst
            .set_members(node)
            .ok_or_else(|| format!("`{path}` is not a set"))?;
        let &m = members
            .get(idx)
            .ok_or_else(|| format!("{path}[{idx}]: set has {} member(s)", members.len()))?;
        Ok(inst.to_value(m))
    };
    let mut delta = SourceDelta::new();
    for chunk in rest.split('|') {
        let args: Vec<&str> = chunk.split_whitespace().collect();
        let parse_idx = |s: &&str| -> Result<usize, String> {
            s.parse().map_err(|_| format!("bad index `{s}`"))
        };
        match args.as_slice() {
            ["del", path, idx] => delta = delta.delete(*path, parse_idx(idx)?),
            ["dup", path, idx] => {
                let v = member_value(path, parse_idx(idx)?)?;
                delta = delta.insert(*path, v);
            }
            ["mod", path, idx, assign] => {
                let (field, value) = assign
                    .split_once('=')
                    .ok_or_else(|| format!("`{assign}` is not <field>=<value>"))?;
                let idx = parse_idx(idx)?;
                let Value::Record(mut fields) = member_value(path, idx)? else {
                    return Err(format!("{path}[{idx}] is not a record member"));
                };
                let slot = fields
                    .iter_mut()
                    .find(|(l, _)| l.as_str() == field)
                    .ok_or_else(|| format!("{path}[{idx}] has no field `{field}`"))?;
                slot.1 = Value::str(value);
                delta = delta.modify(*path, idx, Value::Record(fields));
            }
            [] => {}
            other => {
                return Err(format!(
                    "unknown edit `{}`; use del|dup|mod (see .help)",
                    other.join(" ")
                ))
            }
        }
    }
    if delta.edits.is_empty() {
        return Err("usage: .delta del|dup|mod <path> <idx> [field=value] [| ...]".into());
    }
    Ok(delta)
}

/// `.trace`: resolve the target values at `path` (optionally filtered to one
/// value), replay each one's journal lineage along its ancestor chain, and
/// cross-check the journaled mappings against the Section 6 where-provenance
/// query.
fn trace_values(tagged: &TaggedInstance, path: &str, filter: Option<&str>) {
    use dtr_obs::journal::Outcome;
    let mut values = tagged.target_values(path);
    if let Some(f) = filter {
        values.retain(|(_, v)| v.as_str() == Some(f) || v.to_string() == f);
    }
    if values.is_empty() {
        match filter {
            Some(f) => println!("no target value `{f}` at `{path}`"),
            None => println!("no target values at `{path}` (expects a canonical element path)"),
        }
        return;
    }
    const LIMIT: usize = 3;
    for (node, value) in values.iter().take(LIMIT) {
        let elem = tagged
            .element_of(*node)
            .map(|e| e.to_string())
            .unwrap_or_else(|| "?".into());
        println!("target node {} = {value}  ({elem})", node.0);
        let mappings = tagged.mappings_of(*node);
        let names: Vec<&str> = mappings.iter().map(|m| m.as_str()).collect();
        println!("  f_mp annotations: {{{}}}", names.join(", "));

        // Journal events along the ancestor chain (leaf up to the root):
        // inserts/merges land on set members, annotations on every node.
        let mut chain = vec![*node];
        let mut cur = *node;
        while let Some(p) = tagged.target().parent(cur) {
            chain.push(p);
            cur = p;
        }
        let mut events: Vec<dtr_obs::JournalEvent> = Vec::new();
        for n in &chain {
            events.extend(dtr_obs::journal::events_for(u64::from(n.0)));
        }
        events.sort_by_key(|e| e.id);
        let key_events: Vec<&dtr_obs::JournalEvent> = events
            .iter()
            .filter(|e| matches!(e.outcome, Outcome::Inserted | Outcome::PnfMerged { .. }))
            .collect();
        let ann_written = events
            .iter()
            .filter(|e| matches!(e.outcome, Outcome::AnnotationWritten))
            .count();
        let ann_suppressed = events
            .iter()
            .filter(|e| matches!(e.outcome, Outcome::AnnotationSuppressed { .. }))
            .count();
        if events.is_empty() {
            println!("  lineage: no journal events — was the journal on during the exchange?");
            println!("           (restart without --no-journal / DTR_JOURNAL=0)");
            continue;
        }
        println!(
            "  lineage: {} insert/merge event(s), {ann_written} annotation write(s), \
             {ann_suppressed} suppressed",
            key_events.len()
        );
        for e in key_events.iter().take(8) {
            println!("    {}", e.render());
        }

        // Cross-check: every annotating mapping must (a) have journal events
        // on the chain and (b) reach this value by where-provenance.
        let journaled: std::collections::BTreeSet<&str> =
            events.iter().filter_map(|e| e.mapping.as_deref()).collect();
        let mut agree = true;
        for m in mappings {
            let in_journal = journaled.contains(m.as_str());
            match provenance_of(tagged, ProvenanceKind::Where, m, *node) {
                Ok(p) => {
                    println!(
                        "  where-provenance via {m}: {} fact(s){}",
                        p.facts.len(),
                        if in_journal {
                            ", journaled"
                        } else {
                            ", NOT journaled"
                        }
                    );
                    if p.facts.is_empty() || !in_journal {
                        agree = false;
                    }
                }
                Err(e) => {
                    println!("  where-provenance via {m}: {e}");
                    agree = false;
                }
            }
        }
        println!(
            "  => lineage {} where-provenance",
            if agree {
                "agrees with"
            } else {
                "DISAGREES with"
            }
        );
    }
    if values.len() > LIMIT {
        println!(
            "... and {} more value(s); narrow with `.trace {path} <value>`",
            values.len() - LIMIT
        );
    }
}

/// Starts a WAL-backed durable session at `dir` from the shell's current
/// state: the live incremental session's (possibly edited) sources when
/// one exists, the pristine tagged sources otherwise.
fn start_durable(
    tagged: &TaggedInstance,
    session: Option<&dtr::core::incremental::IncrementalSession>,
    dir: &str,
) -> Result<dtr::core::store::DurableSession, dtr::core::tagged::MxqlError> {
    let setting = dtr::core::tagged::MappingSetting::new(
        tagged.setting().source_schemas().to_vec(),
        tagged.setting().target_schema().clone(),
        tagged.setting().mappings().to_vec(),
    )?;
    let sources = match session {
        Some(s) => s.sources().to_vec(),
        None => tagged.source_instances().to_vec(),
    };
    let vfs: std::sync::Arc<dyn dtr::mapping::durable::Vfs> =
        std::sync::Arc::new(dtr::mapping::durable::StdVfs::new("."));
    dtr::core::store::DurableSession::create(
        setting,
        sources,
        None,
        vfs,
        dir,
        dtr::core::store::DurableOptions::default(),
    )
}

/// The two-line `.delta` result summary (shared by the plain and durable
/// paths).
fn print_delta_summary(td: &dtr::mapping::delta::TargetDelta) {
    println!(
        "batch {}: {} edit(s) → +{} member(s), -{} member(s), {} class(es) rebuilt",
        td.batch,
        td.edits,
        td.inserted.len(),
        td.retracted.len(),
        td.classes_rebuilt
    );
    println!(
        "mappings: {} pruned, {} re-evaluated; rows +{}/-{}",
        td.mappings_pruned, td.mappings_reevaluated, td.rows_added, td.rows_removed
    );
}

fn main() {
    let mut tagged = load();
    let runner = MetaRunner::new(tagged.setting()).expect("metastore builds");
    let mut mode = Mode::Direct;
    let mut limits = Budget::unlimited();
    // The incremental-exchange session backing `.delta`/`.rebase`, built
    // lazily from the current tagged instance on first use.
    let mut session: Option<dtr::core::incremental::IncrementalSession> = None;
    // The WAL-backed durable session behind `.save wal`/`.open`; when
    // active, `.delta` commits through it (WAL-then-publish) instead.
    let mut durable: Option<dtr::core::store::DurableSession> = None;
    eprintln!(
        "tagged instance ready: {} target values, {} mappings. Type .help for help.",
        tagged.target().len(),
        tagged.setting().mappings().len()
    );

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    print!("mxql> ");
    let _ = std::io::stdout().flush();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            let (cmd, rest) = trimmed.split_once(' ').unwrap_or((trimmed, ""));
            // DISPATCH-BEGIN (the sync test scans this range for dot-command arms)
            match cmd {
                ".quit" | ".exit" => break,
                ".help" => help(),
                ".mappings" => {
                    for m in tagged.setting().mappings() {
                        println!("{m}\n");
                    }
                }
                ".store" => println!("{}", runner.store().render()),
                ".profile" => match rest.trim() {
                    "on" => {
                        dtr_obs::set_enabled(true);
                        dtr_obs::profile_reset();
                        println!("profiling on");
                    }
                    "off" => {
                        dtr_obs::set_enabled(false);
                        println!("profiling off");
                    }
                    "json" => println!("{}", dtr_obs::profile_snapshot().to_json_string()),
                    _ => println!("{}", dtr_obs::profile_snapshot().render()),
                },
                ".mode" => {
                    mode = match rest.trim() {
                        "translated" => {
                            println!("executing through the Section 7.3 translation");
                            Mode::Translated
                        }
                        "virtual" => {
                            println!("answering plain target queries virtually over the sources");
                            Mode::Virtual
                        }
                        _ => {
                            println!("executing with the direct Section 5 semantics");
                            Mode::Direct
                        }
                    };
                }
                ".lint" => {
                    let schemas: Vec<&Schema> = tagged.setting().source_schemas().iter().collect();
                    match lint_mappings(
                        tagged.setting().mappings(),
                        &schemas,
                        tagged.setting().target_schema(),
                    ) {
                        Ok(lints) => {
                            for l in &lints {
                                println!("  - {l}");
                            }
                            println!("({} findings)", lints.len());
                        }
                        Err(e) => println!("lint error: {e}"),
                    }
                }
                ".whatif" => {
                    let arg = rest.trim();
                    let impact = if arg.contains(',')
                        || tagged.setting().mapping(&MappingName::new(arg)).is_some()
                    {
                        let removed: Vec<MappingName> =
                            arg.split(',').map(|m| MappingName::new(m.trim())).collect();
                        impact_of_mappings(&tagged, &removed)
                    } else {
                        impact_of_source(&tagged, arg)
                    };
                    println!(
                        "lost {} values ({:.1} %), {} survive",
                        impact.lost_values,
                        100.0 * impact.lost_fraction(),
                        impact.surviving_values
                    );
                    for (path, n) in impact.lost_by_element.iter().take(8) {
                        println!("  {path}  ({n})");
                    }
                }
                ".save" => {
                    let arg = rest.trim();
                    if let Some(dir) = arg.strip_prefix("wal ").map(str::trim) {
                        if dir.is_empty() {
                            println!("usage: .save wal <dir>");
                        } else {
                            match start_durable(&tagged, session.as_ref(), dir) {
                                Ok(d) => {
                                    println!(
                                        "durable session started: checkpoint written to \
                                         {dir}/wal-{:06}.log ({} bytes committed)",
                                        d.wal_segment(),
                                        d.wal_committed_len()
                                    );
                                    session = None;
                                    durable = Some(d);
                                }
                                Err(e) => println!("cannot start durable session: {e}"),
                            }
                        }
                    } else if arg.is_empty() {
                        println!("usage: .save <file.xml> | .save wal <dir>");
                    } else {
                        let xml = dtr::xml::writer::instance_to_xml(
                            tagged.target(),
                            dtr::xml::writer::WriteOptions::annotated(),
                        );
                        match std::fs::write(arg, &xml) {
                            Ok(()) => println!("wrote {} bytes to {arg}", xml.len()),
                            Err(e) => println!("cannot write {arg}: {e}"),
                        }
                    }
                }
                ".open" => {
                    let dir = rest.trim();
                    if dir.is_empty() {
                        println!("usage: .open <dir>");
                    } else {
                        let vfs: std::sync::Arc<dyn dtr::mapping::durable::Vfs> =
                            std::sync::Arc::new(dtr::mapping::durable::StdVfs::new("."));
                        match dtr::core::store::DurableSession::open(
                            vfs,
                            dir,
                            dtr::core::store::DurableOptions::default(),
                        ) {
                            Ok((d, report)) => {
                                println!(
                                    "recovered from {dir}: segment {}, {} delta(s) replayed, \
                                     {} torn byte(s) truncated, batch {}",
                                    report.segment,
                                    report.replayed,
                                    report.truncated_bytes,
                                    d.batch()
                                );
                                for w in &report.warnings {
                                    println!("  warning: {w}");
                                }
                                match d.session().tagged() {
                                    Ok(t) => {
                                        tagged = t;
                                        session = None;
                                        durable = Some(d);
                                    }
                                    Err(e) => println!("cannot build tagged view: {e}"),
                                }
                            }
                            Err(e) => println!("cannot open {dir}: {e}"),
                        }
                    }
                }
                ".checkpoint" => match durable.as_mut() {
                    None => {
                        println!("no durable session (start one with .save wal <dir> or .open)")
                    }
                    Some(d) => match d.checkpoint() {
                        Ok(()) => {
                            println!(
                                "checkpointed: segment {} leads with batch {}",
                                d.wal_segment(),
                                d.batch()
                            );
                            match d.session().tagged() {
                                Ok(t) => tagged = t,
                                Err(e) => println!("cannot refresh tagged view: {e}"),
                            }
                        }
                        Err(e) => println!("checkpoint error: {e}"),
                    },
                },
                ".schema" => {
                    let db = rest.trim();
                    let schema = if tagged.setting().target_schema().name() == db {
                        Some(tagged.setting().target_schema())
                    } else {
                        tagged.setting().source_schema(db)
                    };
                    match schema {
                        Some(s) => {
                            for (id, el) in s.elements() {
                                println!(
                                    "  {id:>5}  {:<28} {:<7} {}",
                                    s.path(id),
                                    el.kind.name(),
                                    el.label
                                );
                            }
                        }
                        None => println!(
                            "unknown database `{db}`; try `{}` or a source name",
                            tagged.setting().target_schema().name()
                        ),
                    }
                }
                ".translate" => {
                    let text = rest.trim().trim_end_matches(';');
                    match parse_query(text) {
                        Ok(q) => {
                            let q = tagged.setting().normalize_query(&q);
                            match translate(&q, tagged.target().db()) {
                                Ok(branches) => {
                                    for (i, b) in branches.iter().enumerate() {
                                        if branches.len() > 1 {
                                            println!("-- union branch {} --", i + 1);
                                        }
                                        println!("{b}\n");
                                    }
                                }
                                Err(e) => println!("translation error: {e}"),
                            }
                        }
                        Err(e) => println!("parse error: {e}"),
                    }
                }
                ".explain" => {
                    let text = rest.trim().trim_end_matches(';');
                    match parse_query(text) {
                        Ok(q) => {
                            let q = tagged.setting().normalize_query(&q);
                            match translate_explained(&q, tagged.target().db()) {
                                Ok((branches, trace)) => {
                                    print!("{}", trace.render());
                                    println!(
                                        "PLAIN QUER{} ({} union branch{}):",
                                        if branches.len() == 1 { "Y" } else { "IES" },
                                        branches.len(),
                                        if branches.len() == 1 { "" } else { "es" },
                                    );
                                    for (i, b) in branches.iter().enumerate() {
                                        if branches.len() > 1 {
                                            println!("-- union branch {} --", i + 1);
                                        }
                                        println!("{b}\n");
                                    }
                                }
                                Err(e) => println!("translation error: {e}"),
                            }
                            // Cost-based planner view: logical rewrites,
                            // physical operators with estimated rows, and
                            // actual rows from one instrumented execution.
                            match tagged.plan_for(text) {
                                Ok(plan) => match tagged.run_plan_analyzed(&plan) {
                                    Ok((_, node)) => print!("{}", plan.render_with_actual(&node)),
                                    Err(_) => print!("{}", plan.render()),
                                },
                                Err(e) => println!("planning error: {e}"),
                            }
                        }
                        Err(e) => println!("parse error: {e}"),
                    }
                }
                ".analyze" => {
                    let text = rest.trim().trim_end_matches(';');
                    if text.is_empty() {
                        println!("usage: .analyze <query>;");
                    } else {
                        match parse_query(text) {
                            Ok(q) => {
                                let t0 = std::time::Instant::now();
                                match tagged.run_analyzed(&q) {
                                    Ok((r, plan)) => {
                                        print!("{}", r.to_table());
                                        println!(
                                            "({} rows in {:.1} ms)",
                                            r.len(),
                                            t0.elapsed().as_secs_f64() * 1e3
                                        );
                                        print!("{}", plan.render());
                                        // Analyzed runs return their tree;
                                        // the REPL is the one front-end that
                                        // publishes it for `.profile json`.
                                        dtr_obs::analyze::set_last(plan);
                                    }
                                    Err(e) => println!("error: {e}"),
                                }
                            }
                            Err(e) => println!("parse error: {e}"),
                        }
                    }
                }
                ".stats" => match rest.trim() {
                    "on" => {
                        dtr_obs::stats::set_enabled(true);
                        println!("statistics collection on");
                    }
                    "off" => {
                        dtr_obs::stats::set_enabled(false);
                        println!("statistics collection off (catalog kept; `.stats` still dumps)");
                    }
                    "json" => println!("{}", dtr_obs::stats::snapshot().to_json_string()),
                    "reset" => {
                        dtr_obs::stats::reset();
                        println!("statistics catalog cleared");
                    }
                    _ => print!("{}", dtr_obs::stats::snapshot().render()),
                },
                ".trace" => {
                    let mut parts = rest.split_whitespace();
                    let path = parts.next().unwrap_or("");
                    let filter: Option<&str> = parts.next();
                    if path.is_empty() {
                        println!("usage: .trace <element-path> [value]");
                    } else {
                        trace_values(&tagged, path, filter);
                    }
                }
                ".limits" => {
                    if rest.trim().is_empty() {
                        show_limits(&limits);
                    } else {
                        match parse_limits(rest, &limits) {
                            Ok(b) => {
                                limits = b;
                                show_limits(&limits);
                            }
                            Err(e) => {
                                println!("{e}");
                                println!(
                                    "usage: .limits [off | deadline-ms N | max-rows N | \
                                     max-bindings N | max-bytes N]"
                                );
                            }
                        }
                    }
                }
                ".journal" => {
                    let args: Vec<&str> = rest.split_whitespace().collect();
                    match args.as_slice() {
                        ["on"] => {
                            dtr_obs::journal::set_enabled(true);
                            println!("journal on (reload to capture the exchange itself)");
                        }
                        ["off"] => {
                            dtr_obs::journal::set_enabled(false);
                            println!("journal off");
                        }
                        ["json"] => print!("{}", dtr_obs::journal::to_jsonl()),
                        ["export", file] => {
                            let jsonl = dtr_obs::journal::to_jsonl();
                            match std::fs::write(file, &jsonl) {
                                Ok(()) => println!(
                                    "wrote {} events ({} bytes) to {file}",
                                    jsonl.lines().count(),
                                    jsonl.len()
                                ),
                                Err(e) => println!("cannot write {file}: {e}"),
                            }
                        }
                        _ => {
                            let s = dtr_obs::journal::summary();
                            println!(
                                "journal: {} recorded, {} retained, {} dropped (cap {})",
                                s.recorded, s.retained, s.dropped, s.cap
                            );
                            // The recorded tally survives ring eviction, so
                            // rare outcomes (guard aborts, collision splits)
                            // stay visible even after heavy churn.
                            for (kind, n) in &s.recorded_by_outcome {
                                println!("  {kind:<24} {n:>8}");
                            }
                        }
                    }
                }
                ".timeline" => {
                    let args: Vec<&str> = rest.split_whitespace().collect();
                    match args.as_slice() {
                        ["on"] => {
                            dtr_obs::recorder::set_enabled(true);
                            println!("flight recorder on (reload to capture the exchange itself)");
                        }
                        ["off"] => {
                            dtr_obs::recorder::set_enabled(false);
                            println!(
                                "flight recorder off (ring kept; `.timeline export` still works)"
                            );
                        }
                        ["export", file] => {
                            let doc = dtr_obs::chrome_trace::export_current();
                            match dtr_obs::chrome_trace::validate(&doc) {
                                Ok(s) => {
                                    let text = doc.to_string();
                                    match std::fs::write(file, &text) {
                                        Ok(()) => println!(
                                            "wrote {} trace event(s) across {} thread(s) to {file} \
                                             — load it in Perfetto or chrome://tracing",
                                            s.events, s.distinct_tids
                                        ),
                                        Err(e) => println!("cannot write {file}: {e}"),
                                    }
                                }
                                Err(e) => println!("trace export failed validation: {e}"),
                            }
                        }
                        _ => print!("{}", dtr_obs::recorder::summary().render()),
                    }
                }
                ".audit" => {
                    let args: Vec<&str> = rest.split_whitespace().collect();
                    match args.as_slice() {
                        ["on"] => {
                            dtr_obs::audit::set_enabled(true);
                            println!("audit log on (one record per query/exchange/translation)");
                        }
                        ["off"] => {
                            dtr_obs::audit::set_enabled(false);
                            println!("audit log off (ring kept; `.audit export` still works)");
                        }
                        ["last"] => match dtr_obs::audit::records().last() {
                            Some(r) => println!("{}", r.render()),
                            None => println!("audit log is empty (`.audit on` to start recording)"),
                        },
                        ["export", file] => {
                            let jsonl = dtr_obs::audit::to_jsonl();
                            match std::fs::write(file, &jsonl) {
                                Ok(()) => println!(
                                    "wrote {} record(s) ({} bytes) to {file}",
                                    jsonl.lines().count(),
                                    jsonl.len()
                                ),
                                Err(e) => println!("cannot write {file}: {e}"),
                            }
                        }
                        _ => {
                            let (recorded, retained, dropped, cap) = dtr_obs::audit::counts();
                            println!(
                                "audit: {} (recorded {recorded}, retained {retained}, \
                                 dropped {dropped}, cap {cap})",
                                if dtr_obs::audit::enabled() {
                                    "on"
                                } else {
                                    "off"
                                }
                            );
                        }
                    }
                }
                ".delta" => {
                    if let Some(d) = durable.as_mut() {
                        match parse_delta_edits(rest, d.session().sources()) {
                            Ok(delta) => match d.apply(&delta) {
                                Ok(td) => {
                                    print_delta_summary(&td);
                                    println!(
                                        "committed to WAL segment {} ({} bytes)",
                                        d.wal_segment(),
                                        d.wal_committed_len()
                                    );
                                    match d.session().tagged() {
                                        Ok(t) => tagged = t,
                                        Err(e) => println!("cannot refresh tagged view: {e}"),
                                    }
                                }
                                Err(e) => println!("delta error: {e}"),
                            },
                            Err(e) => println!("{e}"),
                        }
                    } else {
                        if session.is_none() {
                            let built = dtr::core::tagged::MappingSetting::new(
                                tagged.setting().source_schemas().to_vec(),
                                tagged.setting().target_schema().clone(),
                                tagged.setting().mappings().to_vec(),
                            )
                            .and_then(|setting| {
                                dtr::core::incremental::IncrementalSession::new(
                                    setting,
                                    tagged.source_instances().to_vec(),
                                )
                            });
                            match built {
                                Ok(s) => session = Some(s),
                                Err(e) => println!("cannot start incremental session: {e}"),
                            }
                        }
                        if let Some(s) = session.as_mut() {
                            match parse_delta_edits(rest, s.sources()) {
                                Ok(delta) => match s.apply(&delta) {
                                    Ok(td) => {
                                        print_delta_summary(&td);
                                        match s.tagged() {
                                            Ok(t) => tagged = t,
                                            Err(e) => {
                                                println!("cannot refresh tagged view: {e}")
                                            }
                                        }
                                    }
                                    Err(e) => println!("delta error: {e}"),
                                },
                                Err(e) => println!("{e}"),
                            }
                        }
                    }
                }
                ".rebase" => match session.as_mut() {
                    None => println!(
                        "no incremental session yet (apply a .delta first; durable sessions \
                         renormalize on .checkpoint instead)"
                    ),
                    Some(s) => match s.rebase() {
                        Ok(()) => {
                            println!("rebased: full re-exchange over the edited sources");
                            match s.tagged() {
                                Ok(t) => tagged = t,
                                Err(e) => println!("cannot refresh tagged view: {e}"),
                            }
                        }
                        Err(e) => println!("rebase error: {e}"),
                    },
                },
                other => println!("unknown command {other}; try .help"),
            }
            // DISPATCH-END
            print!("mxql> ");
            let _ = std::io::stdout().flush();
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if !trimmed.ends_with(';') {
            print!("  ..> ");
            let _ = std::io::stdout().flush();
            continue;
        }
        let text = buffer.trim().trim_end_matches(';').to_owned();
        buffer.clear();
        if dtr_obs::enabled() {
            dtr_obs::profile_reset();
        }
        let t0 = std::time::Instant::now();
        let result = match mode {
            Mode::Direct => parse_query(&text)
                .map_err(dtr::core::tagged::MxqlError::from)
                .and_then(|q| tagged.run_budgeted(&q, &limits)),
            Mode::Translated => runner.query_budgeted(&tagged, &text, &limits),
            Mode::Virtual => parse_query(&text)
                .map_err(dtr::core::tagged::MxqlError::from)
                .and_then(|q| {
                    answer_virtually(
                        tagged.setting(),
                        tagged.source_instances(),
                        &q,
                        tagged.functions(),
                    )
                }),
        };
        match result {
            Ok(r) => {
                print!("{}", r.to_table());
                println!(
                    "({} rows in {:.1} ms)",
                    r.len(),
                    t0.elapsed().as_secs_f64() * 1e3
                );
                if dtr_obs::enabled() {
                    println!("{}", dtr_obs::profile_snapshot().render());
                }
            }
            Err(e) => println!("error: {e}"),
        }
        print!("mxql> ");
        let _ = std::io::stdout().flush();
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::COMMANDS;
    use std::collections::BTreeSet;

    /// `.help` is generated from [`COMMANDS`]; this test keeps that table
    /// in lockstep with the dispatch `match` in `main` by scanning the
    /// marked source range for `".command"` string literals.
    #[test]
    fn help_listing_matches_dispatch_table() {
        let src = include_str!("mxql.rs");
        let begin = src.find("// DISPATCH-BEGIN").expect("begin marker");
        let end = src.find("// DISPATCH-END").expect("end marker");
        let body = &src[begin..end];
        // String literals are the odd chunks when splitting on `"` (the
        // dispatch range contains no escaped quotes); a dispatch arm is a
        // literal of the exact shape `.lowercaseword`.
        let dispatched: BTreeSet<&str> = body
            .split('"')
            .skip(1)
            .step_by(2)
            .filter(|s| {
                s.len() > 1 && s.starts_with('.') && s[1..].chars().all(|c| c.is_ascii_lowercase())
            })
            .collect();
        let listed: BTreeSet<&str> = COMMANDS.iter().map(|(name, _)| *name).collect();
        // `.help` appears in the unknown-command hint, not as its own arm
        // text requirement; both sets must nevertheless agree exactly.
        assert_eq!(
            dispatched, listed,
            "dispatch arms and the .help COMMANDS table diverged — \
             add the command to both"
        );
    }

    #[test]
    fn descriptions_are_single_line() {
        for (name, desc) in COMMANDS {
            assert!(!desc.contains('\n'), "{name} description spans lines");
        }
    }
}
