//! # dtr — Representing and Querying Data Transformations
//!
//! An implementation of the system described in *Representing and Querying
//! Data Transformations* (Velegrakis, Miller, Mylopoulos — ICDE 2005):
//! schema-level data provenance via **tagged instances** and the **MXQL**
//! meta-data query language.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`model`] — the nested relational data model (schemas, instances,
//!   annotations, PNF).
//! * [`query`] — the select-from-where query language of Section 4.2.
//! * [`mapping`] — GLAV mappings and the annotation-generating data
//!   exchange engine.
//! * [`metastore`] — the meta-data storage schema of Section 7.1.
//! * [`xml`] — XML serialization of schemas and annotated instances.
//! * [`core`] — tagged instances, MXQL, provenance, and the MXQL→plain
//!   query translator.
//! * [`portal`] — the paper's running example (Figure 1) and the Section 8
//!   real-estate portal scenario generator.

pub use dtr_core as core;
pub use dtr_mapping as mapping;
pub use dtr_metastore as metastore;
pub use dtr_model as model;
pub use dtr_portal as portal;
pub use dtr_query as query;
pub use dtr_xml as xml;

/// The most commonly used names from every crate.
pub mod prelude {
    pub use dtr_model::prelude::*;
}
